package experiments

import (
	"fmt"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/pareto"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// This file holds ablation studies of the design choices DESIGN.md calls
// out. They go beyond the paper's evaluation but use only its machinery:
//
//   - SplitAblation quantifies what the matching split buys over naive
//     divisions (the paper's central scheduling idea);
//   - DVFSAblation quantifies how much of the Pareto frontier comes from
//     per-node configuration (cores, frequency) versus node-count mixing;
//   - PruningReport measures the configuration-space reduction of the
//     per-node domination pruning (the problem the paper leaves open).

// SplitResult is one policy's outcome in the split ablation.
type SplitResult struct {
	Policy cluster.Split
	Time   units.Seconds
	Energy units.Joule
	// TimePenalty and EnergyPenalty are relative to the matching split,
	// in percent (zero for matching itself).
	TimePenalty   float64
	EnergyPenalty float64
}

// SplitAblation compares workload-split policies on a 16 ARM + 14 AMD
// cluster at maximum per-node settings.
func (s *Suite) SplitAblation(workload string) ([]SplitResult, error) {
	space, err := s.Space(workload)
	if err != nil {
		return nil, err
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	groups := space.Groups(cluster.Configuration{
		ARM: cluster.TypeConfig{Nodes: 16, Config: maxConfig(s.ARM)},
		AMD: cluster.TypeConfig{Nodes: 14, Config: maxConfig(s.AMD)},
	})
	results, err := cluster.CompareSplits(groups, w.AnalysisUnits)
	if err != nil {
		return nil, err
	}
	matched := results[cluster.SplitMatching]
	out := make([]SplitResult, 0, len(results))
	for _, policy := range []cluster.Split{
		cluster.SplitMatching, cluster.SplitProportionalNodes, cluster.SplitEqualGroups,
	} {
		ev := results[policy]
		out = append(out, SplitResult{
			Policy:        policy,
			Time:          ev.Time,
			Energy:        ev.Energy,
			TimePenalty:   (float64(ev.Time)/float64(matched.Time) - 1) * 100,
			EnergyPenalty: (float64(ev.Energy)/float64(matched.Energy) - 1) * 100,
		})
	}
	return out, nil
}

// FormatSplitAblation renders the comparison.
func FormatSplitAblation(workload string, results []SplitResult) string {
	out := fmt.Sprintf("Split ablation, %s, 16 ARM + 14 AMD at max settings:\n", workload)
	for _, r := range results {
		out += fmt.Sprintf("  %-22s T=%10v (+%5.1f%%)  E=%10v (+%5.1f%%)\n",
			r.Policy, r.Time, r.TimePenalty, r.Energy, r.EnergyPenalty)
	}
	return out
}

// DVFSAblationResult compares the full configuration space against
// spaces with per-node dimensions frozen.
type DVFSAblationResult struct {
	Workload string
	// Full, NoDVFS (frequency pinned to fmax), NoCoreScaling (cores
	// pinned to max) and NodesOnly (both pinned) describe each space's
	// frontier.
	Full, NoDVFS, NoCoreScaling, NodesOnly FrontierSummary
}

// FrontierSummary condenses one space's frontier.
type FrontierSummary struct {
	SpacePoints    int
	FrontierPoints int
	MinTime        units.Seconds
	MinEnergy      units.Joule
}

// DVFSAblation evaluates the EP-style ablation over a maxARM x maxAMD
// space.
func (s *Suite) DVFSAblation(workload string, maxARM, maxAMD int) (DVFSAblationResult, error) {
	space, err := s.Space(workload)
	if err != nil {
		return DVFSAblationResult{}, err
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return DVFSAblationResult{}, err
	}
	job := w.AnalysisUnits

	fmaxARM := s.ARM.FMax()
	fmaxAMD := s.AMD.FMax()
	allCoresARM := s.ARM.Cores
	allCoresAMD := s.AMD.Cores

	summarize := func(keepARM, keepAMD func(hwsim.Config) bool) (FrontierSummary, error) {
		// Stream the filtered sub-space: only the frontier and a count are
		// needed, so no point slice is ever materialized.
		var f pareto.OnlineFrontier
		var insErr error
		n := 0
		err := space.EnumerateFilteredFunc(maxARM, maxAMD, job, keepARM, keepAMD, func(p cluster.Point) bool {
			_, insErr = f.Add(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: n})
			n++
			return insErr == nil
		})
		if err == nil {
			err = insErr
		}
		if err != nil {
			return FrontierSummary{}, err
		}
		fr := f.Frontier()
		return FrontierSummary{
			SpacePoints:    n,
			FrontierPoints: len(fr),
			MinTime:        units.Seconds(pareto.MinTime(fr)),
			MinEnergy:      units.Joule(pareto.MinEnergy(fr)),
		}, nil
	}

	res := DVFSAblationResult{Workload: workload}
	if res.Full, err = summarize(nil, nil); err != nil {
		return DVFSAblationResult{}, err
	}
	if res.NoDVFS, err = summarize(
		func(c hwsim.Config) bool { return c.Frequency == fmaxARM },
		func(c hwsim.Config) bool { return c.Frequency == fmaxAMD },
	); err != nil {
		return DVFSAblationResult{}, err
	}
	if res.NoCoreScaling, err = summarize(
		func(c hwsim.Config) bool { return c.Cores == allCoresARM },
		func(c hwsim.Config) bool { return c.Cores == allCoresAMD },
	); err != nil {
		return DVFSAblationResult{}, err
	}
	if res.NodesOnly, err = summarize(
		func(c hwsim.Config) bool { return c.Frequency == fmaxARM && c.Cores == allCoresARM },
		func(c hwsim.Config) bool { return c.Frequency == fmaxAMD && c.Cores == allCoresAMD },
	); err != nil {
		return DVFSAblationResult{}, err
	}
	return res, nil
}

// Format renders the ablation.
func (r DVFSAblationResult) Format() string {
	row := func(name string, s FrontierSummary) string {
		return fmt.Sprintf("  %-16s %8d points  %4d on frontier  fastest %10v  min energy %10v\n",
			name, s.SpacePoints, s.FrontierPoints, s.MinTime, s.MinEnergy)
	}
	return fmt.Sprintf("DVFS/core ablation, %s:\n", r.Workload) +
		row("full space", r.Full) +
		row("no DVFS", r.NoDVFS) +
		row("no core scaling", r.NoCoreScaling) +
		row("nodes only", r.NodesOnly)
}

// PruningReport runs the domination pruning over a maxARM x maxAMD space
// and verifies frontier equality with the full space.
type PruningReport struct {
	Workload string
	Stats    cluster.PruneStats
	// FrontierIntact is true when the pruned frontier equals the full
	// one point for point.
	FrontierIntact bool
}

// Pruning computes the report.
func (s *Suite) Pruning(workload string, maxARM, maxAMD int) (PruningReport, error) {
	space, err := s.Space(workload)
	if err != nil {
		return PruningReport{}, err
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return PruningReport{}, err
	}
	job := w.AnalysisUnits

	// The full space is only needed for its frontier, so stream it
	// through an online frontier instead of materializing 36k+ points.
	var fullF pareto.OnlineFrontier
	var insErr error
	i := 0
	err = space.EnumerateFunc(maxARM, maxAMD, job, func(p cluster.Point) bool {
		_, insErr = fullF.Add(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i})
		i++
		return insErr == nil
	})
	if err == nil {
		err = insErr
	}
	if err != nil {
		return PruningReport{}, err
	}
	frFull := fullF.Frontier()
	prunedPts, stats, err := space.EnumeratePruned(maxARM, maxAMD, job)
	if err != nil {
		return PruningReport{}, err
	}
	frPruned, err := pareto.Frontier(pointsTE(prunedPts))
	if err != nil {
		return PruningReport{}, err
	}
	intact := len(frFull) == len(frPruned)
	if intact {
		for i := range frFull {
			if !closeRel(frFull[i].Time, frPruned[i].Time) || !closeRel(frFull[i].Energy, frPruned[i].Energy) {
				intact = false
				break
			}
		}
	}
	return PruningReport{Workload: workload, Stats: stats, FrontierIntact: intact}, nil
}

// Format renders the report.
func (r PruningReport) Format() string {
	return fmt.Sprintf("Pruning, %s: %d->%d ARM configs, %d->%d AMD configs, space %d->%d (%.1fx), frontier intact: %v\n",
		r.Workload,
		20, r.Stats.ARMConfigs, 18, r.Stats.AMDConfigs,
		r.Stats.FullSpace, r.Stats.PrunedSpace, r.Stats.Reduction(), r.FrontierIntact)
}

func pointsTE(points []cluster.Point) []pareto.TE {
	tes := make([]pareto.TE, len(points))
	for i, p := range points {
		tes[i] = pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i}
	}
	return tes
}

func closeRel(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-12*m
}
