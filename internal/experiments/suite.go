// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 3-5, Figures 2-10) plus the §VI headline numbers,
// using the full reproduction pipeline: workload demands -> baseline
// measurement campaigns on the simulated testbed -> profile fitting and
// power characterization -> the analytical model -> configuration-space
// enumeration, Pareto frontiers, power-budget mixes and M/D/1 queueing.
//
// Each experiment returns a structured result plus helpers that format it
// the way the paper presents it; cmd/validate, cmd/characterize,
// cmd/paretoviz and cmd/heteromix expose them on the command line, and
// the repository-root benchmarks regenerate each artifact as a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"sync"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/tablecache"
	"heteromix/internal/workloads"
)

// SuiteOptions configures the shared experiment pipeline.
type SuiteOptions struct {
	// NoiseSigma is the measurement noise used in baseline campaigns and
	// validation runs (default 0.03, matching the few-percent run-to-run
	// irregularity the paper reports).
	NoiseSigma float64
	// Seed makes the whole suite reproducible.
	Seed int64
}

// Suite carries the fitted models for every workload on both node types.
type Suite struct {
	ARM  hwsim.NodeSpec
	AMD  hwsim.NodeSpec
	Opts SuiteOptions

	mu     sync.Mutex
	models map[string]model.NodeModel // key: workload + "/" + node name

	// tables memoizes compiled kernel tables per (workload,
	// switch-accounting) pair, shared across every experiment of the
	// suite — the parallel `all` runner's stages each reuse one compiled
	// table instead of rebuilding the kernel arrays per stage.
	tables *tablecache.Cache
}

// NewSuite creates a Suite with the paper's two node types.
func NewSuite(opts SuiteOptions) *Suite {
	if opts.NoiseSigma == 0 {
		opts.NoiseSigma = 0.03
	}
	return &Suite{
		ARM:    hwsim.ARMCortexA9(),
		AMD:    hwsim.AMDOpteronK10(),
		Opts:   opts,
		models: make(map[string]model.NodeModel),
		tables: tablecache.New(0),
	}
}

// Model returns (building and caching on first use) the fitted model of a
// workload on a node type.
func (s *Suite) Model(workload string, spec hwsim.NodeSpec) (model.NodeModel, error) {
	key := workload + "/" + spec.Name
	s.mu.Lock()
	defer s.mu.Unlock()
	if nm, ok := s.models[key]; ok {
		return nm, nil
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return model.NodeModel{}, err
	}
	nm, err := model.Build(spec, w, model.BuildOptions{
		NoiseSigma: s.Opts.NoiseSigma,
		Seed:       s.Opts.Seed + int64(len(s.models)),
	})
	if err != nil {
		return model.NodeModel{}, fmt.Errorf("experiments: building %s: %w", key, err)
	}
	s.models[key] = nm
	return nm, nil
}

// WarmModels builds every registered workload's models in the canonical
// order — name-sorted workloads, the AMD spec then the ARM spec per
// workload, exactly the order a serial Table 3 pass establishes. Model
// seeds depend on build order (Seed + len(models) at build time), so
// concurrent experiment stages must warm the cache through this method
// first to reproduce a serial run's numbers bit for bit.
func (s *Suite) WarmModels() error {
	for _, w := range workloads.All() {
		for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
			if _, err := s.Model(w.Name(), spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// WarmAllModels extends WarmModels over the whole node registry: first
// the canonical AMD/ARM pass (so those models keep the seeds a serial
// Table 3 run assigns), then every remaining registry node per
// name-sorted workload. After it returns, no request mix can trigger a
// lazy build, so two processes that warmed at startup serve
// bit-identical numbers regardless of the traffic each has seen — the
// property fleet replicas need to survive being restarted (a revived
// replica that refit lazily in request order would rejoin the fleet
// computing subtly different energies and silently break merge
// bit-identity).
func (s *Suite) WarmAllModels() error {
	if err := s.WarmModels(); err != nil {
		return err
	}
	for _, w := range workloads.All() {
		for _, name := range hwsim.Names() {
			spec, err := hwsim.ByName(name)
			if err != nil {
				return err
			}
			if _, err := s.Model(w.Name(), spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// ModelFingerprint identifies the deterministic inputs of the suite's
// model-fitting pipeline: the seed, the noise sigma and the two primary
// node types. Two suites with equal fingerprints that warmed in the
// canonical order (WarmAllModels) fit bit-identical models, so cache
// snapshots embed it: a snapshot from a sibling started with a
// different -seed or -noise must be rejected, not loaded.
func (s *Suite) ModelFingerprint() string {
	return fmt.Sprintf("suite|seed=%d|noise=%g|arm=%s|amd=%s",
		s.Opts.Seed, s.Opts.NoiseSigma, s.ARM.Name, s.AMD.Name)
}

// Table returns the memoized compiled kernel table for a workload's
// space with the given switch accounting. Concurrent callers collapse
// onto one build; the table is immutable and shared.
func (s *Suite) Table(workload string, noSwitch bool) (*cluster.Table, error) {
	space, err := s.Space(workload)
	if err != nil {
		return nil, err
	}
	space.NoSwitchEnergy = noSwitch
	key := fmt.Sprintf("table|%s|%t", workload, noSwitch)
	v, _, err := s.tables.Do(key, func() (tablecache.Artifact, error) {
		return space.NewTable()
	})
	if err != nil {
		return nil, err
	}
	return v.(*cluster.Table), nil
}

// Space returns the two-type configuration space for a workload.
func (s *Suite) Space(workload string) (cluster.Space, error) {
	arm, err := s.Model(workload, s.ARM)
	if err != nil {
		return cluster.Space{}, err
	}
	amd, err := s.Model(workload, s.AMD)
	if err != nil {
		return cluster.Space{}, err
	}
	return cluster.Space{ARM: arm, AMD: amd}, nil
}

// maxConfig returns a node type's all-cores, max-frequency setting.
func maxConfig(spec hwsim.NodeSpec) hwsim.Config {
	return hwsim.Config{Cores: spec.Cores, Frequency: spec.FMax()}
}
