package experiments

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// ProportionalityRow characterizes one node type's energy
// proportionality: how closely its power tracks its load. This is the
// mechanism behind the paper's Figure 10 structure — the AMD node idles
// at 75% of its peak draw (the "energy proportionality wall" of the
// KnightShift work the paper cites), so any configuration keeping an AMD
// node powered pays most of its peak power regardless of load, while the
// ARM node idles at ~36% of peak.
type ProportionalityRow struct {
	Node string
	Idle units.Watt
	Peak units.Watt
	// DynamicRange is 1 - idle/peak: the fraction of peak power that
	// actually responds to load (1 = perfectly proportional hardware).
	DynamicRange float64
	// LoadLevels and PowerAtLoad sample the measured load-power curve:
	// the cpu-max micro-benchmark run on 1..N cores at fmax.
	LoadLevels  []float64
	PowerAtLoad []units.Watt
	// MeanGap is the mean excess of measured power over the ideal
	// proportional line (load x peak), as a fraction of peak. Zero for
	// ideal hardware; large for idle-dominated servers.
	MeanGap float64
}

// Proportionality measures the load-power curve of every calibrated node
// type.
func (s *Suite) Proportionality() ([]ProportionalityRow, error) {
	cpuMax := workloads.MicroCPUMax().Demand
	specs := []hwsim.NodeSpec{s.ARM, hwsim.ARMCortexA15(), s.AMD}
	var rows []ProportionalityRow
	for _, spec := range specs {
		row := ProportionalityRow{Node: spec.Name, Idle: spec.IdlePower()}
		fmax := spec.FMax()
		var peak float64
		for c := 1; c <= spec.Cores; c++ {
			m, err := hwsim.Run(spec, hwsim.Config{Cores: c, Frequency: fmax}, cpuMax,
				2e4*float64(c), hwsim.Options{Seed: s.Opts.Seed, NoiseSigma: s.Opts.NoiseSigma})
			if err != nil {
				return nil, fmt.Errorf("experiments: proportionality of %s: %w", spec.Name, err)
			}
			row.LoadLevels = append(row.LoadLevels, float64(c)/float64(spec.Cores))
			p := m.Record.AveragePower()
			row.PowerAtLoad = append(row.PowerAtLoad, p)
			if float64(p) > peak {
				peak = float64(p)
			}
		}
		row.Peak = units.Watt(peak)
		row.DynamicRange = 1 - float64(row.Idle)/peak
		gap := 0.0
		for i, load := range row.LoadLevels {
			ideal := load * peak
			gap += (float64(row.PowerAtLoad[i]) - ideal) / peak
		}
		row.MeanGap = gap / float64(len(row.LoadLevels))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatProportionality renders the rows.
func FormatProportionality(rows []ProportionalityRow) string {
	out := "Energy proportionality (cpu-max load sweep at fmax):\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-16s idle %v, peak %v, dynamic range %.0f%%, mean gap over ideal %.0f%% of peak\n",
			r.Node, r.Idle, r.Peak, r.DynamicRange*100, r.MeanGap*100)
	}
	return out
}
