package experiments

import (
	"strings"
	"testing"
)

func TestBottleneckClassificationMatchesTable3(t *testing.T) {
	rows, err := sharedSuite().BottleneckClassification()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Diagnosed != r.Expected {
			t.Errorf("%s on %s: diagnosed %v, Table 3 says %v (IO %.2f, mem/core %.2f)",
				r.Program, r.Node, r.Diagnosed, r.Expected, r.IOShare, r.MemShare)
		}
	}
	if !strings.Contains(FormatBottlenecks(rows), "diagnosed") {
		t.Error("format broken")
	}
}
