package experiments

import (
	"math"
	"strings"
	"testing"

	"heteromix/internal/cluster"
)

func TestSplitAblationMatchingWins(t *testing.T) {
	for _, workload := range []string{"ep", "memcached"} {
		results, err := sharedSuite().SplitAblation(workload)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Fatalf("%s: %d policies, want 3", workload, len(results))
		}
		if results[0].Policy != cluster.SplitMatching {
			t.Fatalf("%s: first result should be matching", workload)
		}
		if results[0].TimePenalty != 0 || results[0].EnergyPenalty != 0 {
			t.Errorf("%s: matching penalty should be zero, got %v/%v",
				workload, results[0].TimePenalty, results[0].EnergyPenalty)
		}
		for _, r := range results[1:] {
			// Naive splits waste real time and energy on this asymmetric
			// cluster; the matching technique is what removes the waste.
			if r.TimePenalty < 10 {
				t.Errorf("%s: %v time penalty %v%%, want clearly positive",
					workload, r.Policy, r.TimePenalty)
			}
			if r.EnergyPenalty < 10 {
				t.Errorf("%s: %v energy penalty %v%%, want clearly positive",
					workload, r.Policy, r.EnergyPenalty)
			}
		}
		text := FormatSplitAblation(workload, results)
		if !strings.Contains(text, "matching") || !strings.Contains(text, "proportional") {
			t.Errorf("format missing policies:\n%s", text)
		}
	}
}

func TestDVFSAblationStructure(t *testing.T) {
	r, err := sharedSuite().DVFSAblation("ep", 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Space sizes shrink monotonically as dimensions freeze.
	if !(r.Full.SpacePoints > r.NoDVFS.SpacePoints &&
		r.NoDVFS.SpacePoints > r.NodesOnly.SpacePoints) {
		t.Errorf("space sizes should shrink: %d, %d, %d",
			r.Full.SpacePoints, r.NoDVFS.SpacePoints, r.NodesOnly.SpacePoints)
	}
	// Restricted spaces cannot beat the full space on either axis.
	for name, s := range map[string]FrontierSummary{
		"no DVFS": r.NoDVFS, "no cores": r.NoCoreScaling, "nodes only": r.NodesOnly,
	} {
		if s.MinTime < r.Full.MinTime {
			t.Errorf("%s fastest %v beats full space %v", name, s.MinTime, r.Full.MinTime)
		}
		if s.MinEnergy < r.Full.MinEnergy {
			t.Errorf("%s min energy %v beats full space %v", name, s.MinEnergy, r.Full.MinEnergy)
		}
	}
	// The interesting finding (documented in EXPERIMENTS.md): with
	// switch energy included, max-setting configurations dominate, so
	// the nodes-only frontier matches the full one on both extremes.
	if r.NodesOnly.MinTime != r.Full.MinTime {
		t.Errorf("nodes-only fastest %v != full %v", r.NodesOnly.MinTime, r.Full.MinTime)
	}
	if !strings.Contains(r.Format(), "nodes only") {
		t.Error("format missing rows")
	}
}

func TestPruningKeepsFrontier(t *testing.T) {
	for _, workload := range []string{"ep", "memcached"} {
		r, err := sharedSuite().Pruning(workload, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !r.FrontierIntact {
			t.Errorf("%s: pruning altered the frontier", workload)
		}
		if r.Stats.Reduction() <= 1.5 {
			t.Errorf("%s: reduction only %.2fx", workload, r.Stats.Reduction())
		}
		if !strings.Contains(r.Format(), "frontier intact: true") {
			t.Errorf("format wrong: %s", r.Format())
		}
	}
}

func TestQueueModelValidation(t *testing.T) {
	rows, err := sharedSuite().QueueModelValidation(0.026, []float64{0.25, 0.5}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RelError > 0.15 {
			t.Errorf("rho=%v: M/D/1 closed form off by %.1f%% vs simulation",
				r.Utilization, r.RelError*100)
		}
	}
	if _, err := sharedSuite().QueueModelValidation(0, nil, 0); err == nil {
		t.Error("zero service time should error")
	}
	if !strings.Contains(FormatQueueValidation(rows), "rho=0.50") {
		t.Error("format missing rows")
	}
}

func TestEndToEndValidation(t *testing.T) {
	rows, err := sharedSuite().EndToEndValidation(0.25, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ResponseErr > 20 {
			t.Errorf("%s: response error %.1f%% (analytic %v vs sim %v)",
				r.Config, r.ResponseErr, r.AnalyticResponse, r.SimulatedResponse)
		}
		if r.EnergyErr > 10 {
			t.Errorf("%s: energy error %.1f%% (analytic %v vs sim %v)",
				r.Config, r.EnergyErr, r.AnalyticEnergy, r.SimulatedEnergy)
		}
	}
	if _, err := sharedSuite().EndToEndValidation(0, 100); err == nil {
		t.Error("utilization 0 should error")
	}
	if _, err := sharedSuite().EndToEndValidation(1.5, 100); err == nil {
		t.Error("utilization > 1 should error")
	}
	if !strings.Contains(FormatEndToEnd(rows), "End-to-end") {
		t.Error("format broken")
	}
}

func TestProportionality(t *testing.T) {
	rows, err := sharedSuite().Proportionality()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byNode := map[string]ProportionalityRow{}
	for _, r := range rows {
		byNode[r.Node] = r
		// Power increases monotonically with load.
		for i := 1; i < len(r.PowerAtLoad); i++ {
			if r.PowerAtLoad[i] <= r.PowerAtLoad[i-1] {
				t.Errorf("%s: power not monotone in load", r.Node)
			}
		}
		if r.MeanGap <= 0 {
			t.Errorf("%s: no proportionality gap (%v); real servers idle above zero", r.Node, r.MeanGap)
		}
	}
	arm, amd := byNode["arm-cortex-a9"], byNode["amd-opteron-k10"]
	// The AMD's 45 W idle against a ~60 W peak gives it a far smaller
	// dynamic range than the ARM — the energy proportionality wall.
	if arm.DynamicRange <= amd.DynamicRange+0.2 {
		t.Errorf("ARM dynamic range %v should far exceed AMD %v",
			arm.DynamicRange, amd.DynamicRange)
	}
	if amd.DynamicRange > 0.35 {
		t.Errorf("AMD dynamic range %v, want < 0.35 (idle-dominated)", amd.DynamicRange)
	}
	if !strings.Contains(FormatProportionality(rows), "dynamic range") {
		t.Error("format broken")
	}
}

func TestAdaptiveScheduling(t *testing.T) {
	r, err := sharedSuite().AdaptiveScheduling("ep", 0.05, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// With 80% of traffic relaxed, adaptive should save substantially on
	// the compute-bound EP frontier (its energy spans ~2.3x).
	if r.Result.SavingsPercent < 20 {
		t.Errorf("adaptive savings %.1f%%, want >= 20%%", r.Result.SavingsPercent)
	}
	if r.Result.AdaptiveEnergy > r.Result.StaticEnergy {
		t.Error("adaptive should never cost more")
	}
	if !strings.Contains(r.Format(), "saves") {
		t.Error("format broken")
	}
	if _, err := sharedSuite().AdaptiveScheduling("ep", 0.5, 0.1, 0.2); err == nil {
		t.Error("relaxed < tight should error")
	}
	if _, err := sharedSuite().AdaptiveScheduling("ep", 0.05, 0.5, 2); err == nil {
		t.Error("bad share should error")
	}
}

func TestSensitivityOrderingsRobust(t *testing.T) {
	for _, w := range []string{"ep", "rsa2048"} {
		r, err := sharedSuite().Sensitivity(w, 0.10, 12)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's qualitative conclusions must not hinge on exact
		// calibration constants: a +/-10% sweep keeps the PPR winner in
		// at least 10 of 12 trials.
		if r.PPROrderingHeld < 10 {
			t.Errorf("%s: PPR ordering held only %d/%d under +/-10%%", w, r.PPROrderingHeld, r.Trials)
		}
		if w == "ep" && r.MixBeatsAMDHeld < 10 {
			t.Errorf("ep: mix-beats-AMD held only %d/%d", r.MixBeatsAMDHeld, r.Trials)
		}
		if !strings.Contains(r.Format(), "held") {
			t.Error("format broken")
		}
	}
	if _, err := sharedSuite().Sensitivity("ep", 0.9, 3); err == nil {
		t.Error("huge perturbation should error")
	}
}

func TestWorkQueueStudy(t *testing.T) {
	r, err := sharedSuite().WorkQueue("ep", 1.4)
	if err != nil {
		t.Fatal(err)
	}
	// With perfect estimates static and pull coincide closely.
	relMakespan := math.Abs(float64(r.PerfectStatic.Makespan-r.Pull.Makespan)) / float64(r.Pull.Makespan)
	if relMakespan > 0.02 {
		t.Errorf("perfect static makespan %v vs pull %v (rel %v)",
			r.PerfectStatic.Makespan, r.Pull.Makespan, relMakespan)
	}
	// Mis-estimation blows up the static idle tail but not the pull's.
	if float64(r.MisStatic.IdleTail) < 2*float64(r.Pull.IdleTail) {
		t.Errorf("mis-estimated static idle tail %v should dwarf pull's %v",
			r.MisStatic.IdleTail, r.Pull.IdleTail)
	}
	if r.MisStatic.Makespan <= r.Pull.Makespan {
		t.Error("mis-estimated static should be slower than pull")
	}
	if !strings.Contains(r.Format(), "pull scheduler") {
		t.Error("format broken")
	}
	if _, err := sharedSuite().WorkQueue("ep", 0); err == nil {
		t.Error("zero factor should error")
	}
}
