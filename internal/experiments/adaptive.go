package experiments

import (
	"fmt"

	"heteromix/internal/dispatcher"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// AdaptiveSchedulingResult quantifies what per-job reconfiguration buys
// over static provisioning when traffic mixes tight and relaxed
// deadlines — an extension the paper's sweet region makes possible: an
// adaptive dispatcher serves each job from the Pareto-frontier
// configuration its own deadline demands.
type AdaptiveSchedulingResult struct {
	Workload string
	// TightDeadline/RelaxedDeadline and TightShare describe the traffic.
	TightDeadline   units.Seconds
	RelaxedDeadline units.Seconds
	TightShare      float64
	// Result is the policy comparison.
	Result dispatcher.AdaptiveResult
}

// AdaptiveScheduling compares the policies over the workload's
// 16 ARM + 14 AMD frontier for a traffic mix with tightShare of jobs at
// tight and the rest at relaxed service-time deadlines.
func (s *Suite) AdaptiveScheduling(workload string, tight, relaxed units.Seconds, tightShare float64) (AdaptiveSchedulingResult, error) {
	if tight <= 0 || relaxed <= tight {
		return AdaptiveSchedulingResult{}, fmt.Errorf("experiments: deadlines must satisfy 0 < tight < relaxed")
	}
	if tightShare <= 0 || tightShare >= 1 {
		return AdaptiveSchedulingResult{}, fmt.Errorf("experiments: tight share %v outside (0,1)", tightShare)
	}
	if _, err := workloads.ByName(workload); err != nil {
		return AdaptiveSchedulingResult{}, err
	}
	fr, err := s.FrontierAnalysis(workload, 16, 14, 0)
	if err != nil {
		return AdaptiveSchedulingResult{}, err
	}
	choices := make([]dispatcher.ConfigChoice, 0, len(fr.Frontier))
	for _, te := range fr.Frontier {
		choices = append(choices, dispatcher.ConfigChoice{
			Service: units.Seconds(te.Time),
			Energy:  units.Joule(te.Energy),
		})
	}
	classes := []dispatcher.JobClass{
		{Deadline: tight, Weight: tightShare},
		{Deadline: relaxed, Weight: 1 - tightShare},
	}
	res, err := dispatcher.CompareAdaptive(choices, classes, 20000, s.Opts.Seed)
	if err != nil {
		return AdaptiveSchedulingResult{}, err
	}
	return AdaptiveSchedulingResult{
		Workload:        workload,
		TightDeadline:   tight,
		RelaxedDeadline: relaxed,
		TightShare:      tightShare,
		Result:          res,
	}, nil
}

// Format renders the comparison.
func (r AdaptiveSchedulingResult) Format() string {
	return fmt.Sprintf("Adaptive scheduling, %s: %.0f%% jobs at %v + %.0f%% at %v -> adaptive saves %.0f%% energy over static (%.1fkJ vs %.1fkJ over %d jobs)\n",
		r.Workload, r.TightShare*100, r.TightDeadline, (1-r.TightShare)*100, r.RelaxedDeadline,
		r.Result.SavingsPercent,
		float64(r.Result.AdaptiveEnergy)/1e3, float64(r.Result.StaticEnergy)/1e3, r.Result.Jobs)
}
