package experiments

import (
	"fmt"
	"math"
	"sort"

	"heteromix/internal/cluster"
	"heteromix/internal/pareto"
	"heteromix/internal/plot"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// FrontierResult is a full configuration-space analysis for one workload:
// every evaluated point, the energy-deadline Pareto frontier, the
// homogeneous minimum-energy envelopes, and the detected regions —
// everything Figures 4 and 5 draw.
type FrontierResult struct {
	Workload string
	JobUnits float64
	// Points is the complete configuration space (36,380 entries for the
	// paper's 10 ARM x 10 AMD setting).
	Points []cluster.Point
	// Frontier is the Pareto frontier over Points, time-ascending.
	Frontier []pareto.TE
	// ARMOnlyEnvelope and AMDOnlyEnvelope are the Pareto frontiers
	// restricted to homogeneous configurations (the thin boundary lines
	// of Figures 4 and 5).
	ARMOnlyEnvelope []pareto.TE
	AMDOnlyEnvelope []pareto.TE
	// Sweet is the heterogeneous sweet region, if present.
	Sweet    pareto.Region
	HasSweet bool
	// Overlap is the ARM-only overlap region, if present (the paper
	// finds it for compute-bound workloads only).
	Overlap    pareto.Region
	HasOverlap bool
}

// Figure4 regenerates the paper's Figure 4: the energy-deadline space and
// Pareto frontier for EP (50 million random numbers) on up to 10 ARM and
// 10 AMD nodes.
func (s *Suite) Figure4() (FrontierResult, error) {
	return s.FrontierAnalysis("ep", 10, 10, 0)
}

// Figure5 regenerates the paper's Figure 5: the same analysis for
// memcached (50,000 requests).
func (s *Suite) Figure5() (FrontierResult, error) {
	return s.FrontierAnalysis("memcached", 10, 10, 0)
}

// FrontierAnalysis enumerates the full configuration space for a workload
// (jobUnits = 0 selects the workload's §IV analysis job size) and derives
// the frontier and its regions. Switch energy is included.
func (s *Suite) FrontierAnalysis(workload string, maxARM, maxAMD int, jobUnits float64) (FrontierResult, error) {
	return s.frontierAnalysis(workload, maxARM, maxAMD, jobUnits, false)
}

func (s *Suite) frontierAnalysis(workload string, maxARM, maxAMD int, jobUnits float64, noSwitch bool) (FrontierResult, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return FrontierResult{}, err
	}
	if jobUnits <= 0 {
		jobUnits = w.AnalysisUnits
	}
	// The suite's shared table serves the enumeration: the kernel walk
	// is bit-identical to Space.EnumerateFunc, and concurrent stages
	// (fig4, fig5, headline) compile each workload's table only once.
	tbl, err := s.Table(workload, noSwitch)
	if err != nil {
		return FrontierResult{}, err
	}
	// One streaming pass builds the point slice (part of the result API)
	// while three online frontiers — the main one plus the homogeneous
	// envelopes — absorb each point as it is produced, replacing three
	// full sorts of the 36,380-point space.
	points := make([]cluster.Point, 0, tbl.Space().SpaceSize(maxARM, maxAMD))
	var full, armF, amdF pareto.OnlineFrontier
	var insErr error
	err = tbl.ForEach(maxARM, maxAMD, jobUnits, func(p cluster.Point) bool {
		te := pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: len(points)}
		points = append(points, p)
		if _, insErr = full.Add(te); insErr != nil {
			return false
		}
		switch {
		case p.Config.AMD.Nodes == 0:
			_, insErr = armF.Add(te)
		case p.Config.ARM.Nodes == 0:
			_, insErr = amdF.Add(te)
		}
		return insErr == nil
	})
	if err == nil {
		err = insErr
	}
	if err != nil {
		return FrontierResult{}, err
	}
	res := FrontierResult{Workload: workload, JobUnits: jobUnits, Points: points}
	res.Frontier = full.Frontier()
	if armF.Len() > 0 {
		res.ARMOnlyEnvelope = armF.Frontier()
	}
	if amdF.Len() > 0 {
		res.AMDOnlyEnvelope = amdF.Frontier()
	}
	labelOf := func(i int) pareto.Label { return labelOfPoint(points[i]) }
	res.Sweet, res.HasSweet = pareto.SweetRegion(res.Frontier, labelOf)
	res.Overlap, res.HasOverlap = pareto.OverlapRegion(res.Frontier, labelOf)
	return res, nil
}

func labelOfPoint(p cluster.Point) pareto.Label {
	switch {
	case p.Config.ARM.Nodes > 0 && p.Config.AMD.Nodes > 0:
		return pareto.LabelMix
	case p.Config.ARM.Nodes > 0:
		return pareto.LabelHomogeneousLow
	default:
		return pareto.LabelHomogeneousHigh
	}
}

// EnergyAtDeadline returns the minimum energy the frontier achieves
// within deadline, with ok = false if infeasible.
func (r FrontierResult) EnergyAtDeadline(deadline units.Seconds) (units.Joule, cluster.Point, bool) {
	te, ok := pareto.EnergyAtDeadline(r.Frontier, float64(deadline))
	if !ok {
		return 0, cluster.Point{}, false
	}
	return units.Joule(te.Energy), r.Points[te.Index], true
}

// Chart renders the figure: the configuration cloud (subsampled for
// legibility), the homogeneous envelopes and the frontier.
func (r FrontierResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Pareto frontier for %s", r.Workload),
		XLabel: "Deadline [ms]",
		YLabel: "Energy required for deadline [J]",
	}
	// Subsample the cloud to at most 2000 points.
	stride := len(r.Points)/2000 + 1
	var xs, ys []float64
	for i := 0; i < len(r.Points); i += stride {
		xs = append(xs, r.Points[i].Time.Millis())
		ys = append(ys, float64(r.Points[i].Energy))
	}
	c.Add("All configurations", xs, ys)
	addTE := func(name string, tes []pareto.TE) {
		if len(tes) == 0 {
			return
		}
		var xs, ys []float64
		for _, t := range tes {
			xs = append(xs, t.Time*1e3)
			ys = append(ys, t.Energy)
		}
		c.Add(name, xs, ys)
	}
	addTE("Minimum energy AMD-only", r.AMDOnlyEnvelope)
	addTE("Minimum energy ARM-only", r.ARMOnlyEnvelope)
	addTE("Pareto frontier", r.Frontier)
	return c
}

// FormatFrontier summarizes the analysis as text.
func (r FrontierResult) FormatFrontier() string {
	out := fmt.Sprintf("%s: %d configurations, frontier %d points, time %v..%v, energy %.1fJ..%.1fJ\n",
		r.Workload, len(r.Points), len(r.Frontier),
		units.Seconds(pareto.MinTime(r.Frontier)),
		units.Seconds(r.Frontier[len(r.Frontier)-1].Time),
		pareto.MinEnergy(r.Frontier),
		r.Frontier[0].Energy)
	if r.HasSweet {
		out += fmt.Sprintf("  sweet region: %d mixes, deadline %v..%v, energy %.1fJ..%.1fJ, linear r2=%.3f\n",
			r.Sweet.Points(),
			units.Seconds(r.Sweet.TimeLo), units.Seconds(r.Sweet.TimeHi),
			r.Sweet.EnergyLo, r.Sweet.EnergyHi, r.Sweet.LinearR2)
	}
	if r.HasOverlap {
		out += fmt.Sprintf("  overlap region: %d ARM-only points, deadline %v..%v\n",
			r.Overlap.Points(),
			units.Seconds(r.Overlap.TimeLo), units.Seconds(r.Overlap.TimeHi))
	} else {
		out += "  no overlap region (I/O-bound: homogeneous energy flat as deadline relaxes)\n"
	}
	return out
}

// SortedByTime returns the indices of Points sorted by ascending time,
// for callers that want deterministic iteration.
func (r FrontierResult) SortedByTime() []int {
	idx := make([]int, len(r.Points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := r.Points[idx[a]], r.Points[idx[b]]
		if pa.Time != pb.Time {
			return pa.Time < pb.Time
		}
		return pa.Energy < pb.Energy
	})
	return idx
}

// HomogeneousEnergyFlat reports whether the homogeneous envelope's energy
// stays within relTol across its deadline span — the paper's marker for
// I/O-bound workloads ("the energy incurred by memcached on homogeneous
// systems is constant even as deadline is relaxed"). It considers the
// envelope restricted to a fixed node count (the flattest slice); the
// caller passes the ARM- or AMD-only envelope plus all points.
func (r FrontierResult) HomogeneousEnergyFlat(envelope []pareto.TE, relTol float64) bool {
	if len(envelope) < 2 {
		return true
	}
	// Group envelope energies by node count; within one node count the
	// deadline varies through per-node configs.
	byNodes := map[int][]float64{}
	for _, te := range envelope {
		p := r.Points[te.Index]
		n := p.Config.ARM.Nodes + p.Config.AMD.Nodes
		byNodes[n] = append(byNodes[n], te.Energy)
	}
	for _, es := range byNodes {
		if len(es) < 2 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range es {
			lo, hi = math.Min(lo, e), math.Max(hi, e)
		}
		if (hi-lo)/lo > relTol {
			return false
		}
	}
	return true
}
