package experiments

import (
	"fmt"
	"strings"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/stats"
	"heteromix/internal/workloads"
)

// Table3Row is one workload's single-node validation result: the mean and
// standard deviation of the model-vs-measurement relative error across
// all (cores, frequency) configurations, for execution time and energy on
// each node type — exactly the columns of the paper's Table 3.
type Table3Row struct {
	Domain      string
	Program     string
	ProblemSize float64
	Unit        string
	Bottleneck  workloads.Bottleneck

	TimeErrAMD   stats.ErrorSummary
	TimeErrARM   stats.ErrorSummary
	EnergyErrAMD stats.ErrorSummary
	EnergyErrARM stats.ErrorSummary
}

// validationReps is how many noisy measurement runs each configuration
// contributes to the error statistics.
const validationReps = 3

// Table3 regenerates the paper's Table 3: single-node validation of
// predicted execution time and energy for all six workloads across every
// per-node configuration on one ARM and one AMD node.
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, w := range workloads.All() {
		row := Table3Row{
			Domain:      w.Domain,
			Program:     w.Name(),
			ProblemSize: w.ValidationUnits,
			Unit:        w.Demand.Unit,
			Bottleneck:  w.Bottleneck,
		}
		for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
			terr, eerr, err := s.validateSingleNode(w, spec)
			if err != nil {
				return nil, err
			}
			if spec.Name == s.AMD.Name {
				row.TimeErrAMD, row.EnergyErrAMD = terr, eerr
			} else {
				row.TimeErrARM, row.EnergyErrARM = terr, eerr
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (s *Suite) validateSingleNode(w workloads.Spec, spec hwsim.NodeSpec) (timeErr, energyErr stats.ErrorSummary, err error) {
	nm, err := s.Model(w.Name(), spec)
	if err != nil {
		return stats.ErrorSummary{}, stats.ErrorSummary{}, err
	}
	var predT, measT, predE, measE []float64
	seed := s.Opts.Seed + 1000
	for _, cfg := range hwsim.Configs(spec) {
		pred, err := nm.Predict(cfg, w.ValidationUnits)
		if err != nil {
			return stats.ErrorSummary{}, stats.ErrorSummary{}, err
		}
		for rep := 0; rep < validationReps; rep++ {
			seed++
			m, err := hwsim.Run(spec, cfg, w.Demand, w.ValidationUnits, hwsim.Options{
				Seed:       seed,
				NoiseSigma: s.Opts.NoiseSigma,
			})
			if err != nil {
				return stats.ErrorSummary{}, stats.ErrorSummary{}, err
			}
			predT = append(predT, float64(pred.Time))
			measT = append(measT, float64(m.Record.Elapsed))
			predE = append(predE, float64(pred.Energy))
			measE = append(measE, float64(m.Record.Energy))
		}
	}
	timeErr, err = stats.SummarizeErrors(predT, measT)
	if err != nil {
		return stats.ErrorSummary{}, stats.ErrorSummary{}, err
	}
	energyErr, err = stats.SummarizeErrors(predE, measE)
	return timeErr, energyErr, err
}

// FormatTable3 renders rows the way the paper's Table 3 lays them out.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Single-node validation (relative error %, mean/std over all configs)\n")
	fmt.Fprintf(&b, "%-18s %-13s %-28s %-10s %-11s %-11s %-11s %-11s\n",
		"Domain", "Program", "Problem Size", "Bottleneck",
		"T err AMD", "T err ARM", "E err AMD", "E err ARM")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-13s %-28s %-10s %5.1f/%-5.1f %5.1f/%-5.1f %5.1f/%-5.1f %5.1f/%-5.1f\n",
			r.Domain, r.Program,
			fmt.Sprintf("%.0f %ss", r.ProblemSize, r.Unit),
			r.Bottleneck,
			r.TimeErrAMD.Mean, r.TimeErrAMD.StdDev,
			r.TimeErrARM.Mean, r.TimeErrARM.StdDev,
			r.EnergyErrAMD.Mean, r.EnergyErrAMD.StdDev,
			r.EnergyErrARM.Mean, r.EnergyErrARM.StdDev)
	}
	return b.String()
}

// Table4Row is one cluster validation entry: predicted-vs-simulated time
// and energy error for a fixed cluster of eight ARM nodes and zero or one
// AMD node, as in the paper's Table 4.
type Table4Row struct {
	Program  string
	ARMNodes int
	AMDNodes int
	// TimeErr and EnergyErr are relative errors in percent.
	TimeErr   float64
	EnergyErr float64
}

// Table4 regenerates the paper's Table 4: cluster validation on 8 ARM + 1
// AMD and 8 ARM + 0 AMD, per workload. The "measured" cluster outcome
// applies the model's matching split (as the paper's real runs did) and
// then executes each side on the simulated testbed with measurement
// noise; cluster time is the latest finisher and energy the sum plus the
// ARM switch.
func (s *Suite) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, w := range workloads.All() {
		for _, mix := range []struct{ arm, amd int }{{8, 1}, {8, 0}} {
			row, err := s.validateCluster(w, mix.arm, mix.amd)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func (s *Suite) validateCluster(w workloads.Spec, nARM, nAMD int) (Table4Row, error) {
	space, err := s.Space(w.Name())
	if err != nil {
		return Table4Row{}, err
	}
	cfg := cluster.Configuration{
		ARM: cluster.TypeConfig{Nodes: nARM, Config: maxConfig(s.ARM)},
		AMD: cluster.TypeConfig{Nodes: nAMD, Config: maxConfig(s.AMD)},
	}
	jobUnits := w.ValidationUnits
	pred, err := space.Evaluate(cfg, jobUnits)
	if err != nil {
		return Table4Row{}, err
	}
	ev, err := cluster.Evaluate(space.Groups(cfg), jobUnits)
	if err != nil {
		return Table4Row{}, err
	}

	// "Measure": run each side's share on the simulated testbed.
	seed := s.Opts.Seed + 5000 + int64(nAMD)
	var measT float64
	var measE float64
	if nARM > 0 && ev.Work[0] > 0 {
		m, err := hwsim.Run(s.ARM, cfg.ARM.Config, w.Demand, ev.Work[0]/float64(nARM), hwsim.Options{
			Seed: seed, NoiseSigma: s.Opts.NoiseSigma,
		})
		if err != nil {
			return Table4Row{}, err
		}
		if t := float64(m.Record.Elapsed); t > measT {
			measT = t
		}
		measE += float64(m.Record.Energy) * float64(nARM)
	}
	if nAMD > 0 && ev.Work[1] > 0 {
		m, err := hwsim.Run(s.AMD, cfg.AMD.Config, w.Demand, ev.Work[1]/float64(nAMD), hwsim.Options{
			Seed: seed + 1, NoiseSigma: s.Opts.NoiseSigma,
		})
		if err != nil {
			return Table4Row{}, err
		}
		if t := float64(m.Record.Elapsed); t > measT {
			measT = t
		}
		measE += float64(m.Record.Energy) * float64(nAMD)
	}
	// Switch energy for the ARM enclosure over the measured duration.
	switches := (nARM + cluster.ARMPortsPerSwitch - 1) / cluster.ARMPortsPerSwitch
	measE += float64(cluster.SwitchPower) * float64(switches) * measT

	return Table4Row{
		Program:   w.Name(),
		ARMNodes:  nARM,
		AMDNodes:  nAMD,
		TimeErr:   stats.RelativeError(float64(pred.Time), measT),
		EnergyErr: stats.RelativeError(float64(pred.Energy), measE),
	}, nil
}

// FormatTable4 renders rows the way the paper's Table 4 lays them out.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Cluster validation\n")
	fmt.Fprintf(&b, "%-13s %-10s %-10s %-14s %-14s\n",
		"Program", "ARM nodes", "AMD nodes", "Time error[%]", "Energy error[%]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-10d %-10d %-14.1f %-14.1f\n",
			r.Program, r.ARMNodes, r.AMDNodes, r.TimeErr, r.EnergyErr)
	}
	return b.String()
}

// Table5Row is one workload's performance-to-power ratio on both node
// types, at each type's most energy-efficient configuration.
type Table5Row struct {
	Program string
	// Metric names the performance-per-watt unit, as in Table 5.
	Metric string
	// AMD and ARM are the PPR values.
	AMD float64
	ARM float64
	// AMDConfig and ARMConfig are the most efficient configurations.
	AMDConfig hwsim.Config
	ARMConfig hwsim.Config
}

// Table5 regenerates the paper's Table 5: PPR per workload per node type.
// PPR is work done per unit energy; for memcached the work metric is the
// kilobytes served rather than raw requests, matching the paper's
// "(kbytes/s)/W".
func (s *Suite) Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, w := range workloads.All() {
		row := Table5Row{Program: w.Name(), Metric: w.PPRUnit}
		// Work-unit to metric-unit conversion: memcached requests carry
		// 1 KiB = 1.024 kbytes each.
		factor := 1.0
		if w.Demand.IOBytesPerUnit > 0 && strings.Contains(w.PPRUnit, "kbytes") {
			factor = float64(w.Demand.IOBytesPerUnit) / 1000
		}
		for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
			nm, err := s.Model(w.Name(), spec)
			if err != nil {
				return nil, err
			}
			ppr, cfg, err := nm.PPR()
			if err != nil {
				return nil, err
			}
			if spec.Name == s.AMD.Name {
				row.AMD, row.AMDConfig = ppr*factor, cfg
			} else {
				row.ARM, row.ARMConfig = ppr*factor, cfg
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders rows the way the paper's Table 5 lays them out.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: Performance-to-power ratio (most energy-efficient config)\n")
	fmt.Fprintf(&b, "%-13s %-22s %14s %14s\n", "Program", "PPR metric", "AMD Node", "ARM Node")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-22s %14.1f %14.1f\n", r.Program, r.Metric, r.AMD, r.ARM)
	}
	return b.String()
}
