package experiments

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/perfcounter"
	"heteromix/internal/plot"
	"heteromix/internal/profile"
	"heteromix/internal/stats"
	"heteromix/internal/workloads"
)

// Figure2Point is one problem-size observation of WPI and SPIcore.
type Figure2Point struct {
	Node    string
	Class   string // NAS problem class label (A, B, C)
	Units   float64
	WPI     float64
	SPICore float64
}

// Figure2Result holds the WPI/SPIcore constancy experiment.
type Figure2Result struct {
	Points []Figure2Point
	// MaxRelSpread is the largest relative spread of WPI or SPIcore
	// across problem sizes on any node; the paper's hypothesis is that
	// both are constant as the problem scales.
	MaxRelSpread float64
}

// epClasses are the NAS problem classes the paper's Figure 2 sweeps: EP
// class A (2^28 random numbers), B (2^30) and C (2^32).
var epClasses = []struct {
	Label string
	Units float64
}{
	{"A", 1 << 28},
	{"B", 1 << 30},
	{"C", 1 << 32},
}

// Figure2 regenerates the paper's Figure 2: WPI and SPIcore measured for
// EP at problem classes A, B and C on both node types, demonstrating that
// both ratios are constant as the workload scales from Ps to P.
func (s *Suite) Figure2() (Figure2Result, error) {
	ep, err := workloads.ByName("ep")
	if err != nil {
		return Figure2Result{}, err
	}
	var res Figure2Result
	for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
		cfg := maxConfig(spec)
		var sizes []float64
		for _, c := range epClasses {
			sizes = append(sizes, c.Units)
		}
		tr, err := perfcounter.CollectAcrossSizes(spec, cfg, ep.Demand, sizes, s.Opts.NoiseSigma, s.Opts.Seed+100)
		if err != nil {
			return Figure2Result{}, err
		}
		var wpis, spis []float64
		for i, r := range tr.Records {
			res.Points = append(res.Points, Figure2Point{
				Node:    spec.Name,
				Class:   epClasses[i].Label,
				Units:   r.WorkUnits,
				WPI:     r.WPI(),
				SPICore: r.SPICore(),
			})
			wpis = append(wpis, r.WPI())
			spis = append(spis, r.SPICore())
		}
		for _, vals := range [][]float64{wpis, spis} {
			if m := stats.Mean(vals); m > 0 {
				if spread := stats.StdDev(vals) / m; spread > res.MaxRelSpread {
					res.MaxRelSpread = spread
				}
			}
		}
	}
	return res, nil
}

// Chart renders Figure 2 as two series per node.
func (r Figure2Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Figure 2: WPI and SPIcore across problem size (EP)",
		XLabel: "problem class (1=A, 2=B, 3=C)",
		YLabel: "cycles per instruction",
	}
	byKey := map[string][][2]float64{}
	for _, p := range r.Points {
		idx := float64(classIndex(p.Class))
		byKey[p.Node+" WPI"] = append(byKey[p.Node+" WPI"], [2]float64{idx, p.WPI})
		byKey[p.Node+" SPIcore"] = append(byKey[p.Node+" SPIcore"], [2]float64{idx, p.SPICore})
	}
	for _, name := range []string{
		"amd-opteron-k10 WPI", "amd-opteron-k10 SPIcore",
		"arm-cortex-a9 WPI", "arm-cortex-a9 SPIcore",
	} {
		pts := byKey[name]
		if len(pts) == 0 {
			continue
		}
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		c.Add(name, xs, ys)
	}
	return c
}

func classIndex(label string) int {
	for i, c := range epClasses {
		if c.Label == label {
			return i + 1
		}
	}
	return 0
}

// Figure3Series is one (node, cores) SPImem-vs-frequency sweep.
type Figure3Series struct {
	Node  string
	Cores int
	// FreqGHz and SPIMem are the sweep points.
	FreqGHz []float64
	SPIMem  []float64
	// R2 is the Pearson r^2 of the linear fit, which the paper reports
	// as >= 0.94 for every sweep.
	R2 float64
	// Slope is the fitted slope in stall cycles per instruction per GHz.
	Slope float64
}

// Figure3Result holds the SPImem regression experiment.
type Figure3Result struct {
	Series []Figure3Series
	// MinR2 is the weakest fit across all sweeps.
	MinR2 float64
}

// Figure3 regenerates the paper's Figure 3: SPImem measured across core
// frequencies for 1 core and for all cores, on both node types, with the
// stall micro-benchmark; SPImem grows linearly with frequency.
func (s *Suite) Figure3() (Figure3Result, error) {
	micro := workloads.MicroStallStream()
	res := Figure3Result{MinR2: 1}
	for _, spec := range []hwsim.NodeSpec{s.AMD, s.ARM} {
		tr, err := perfcounter.Campaign{
			Spec:        spec,
			Demand:      micro.Demand,
			Units:       1e4,
			Repetitions: 1,
			NoiseSigma:  s.Opts.NoiseSigma,
			Seed:        s.Opts.Seed + 200,
		}.Collect()
		if err != nil {
			return Figure3Result{}, err
		}
		prof, err := profile.Fit(tr, micro.Name(), spec.Name)
		if err != nil {
			return Figure3Result{}, err
		}
		for _, cores := range []int{1, spec.Cores} {
			var fs, ys []float64
			for _, rec := range tr.Records {
				if rec.Cores != cores {
					continue
				}
				fs = append(fs, rec.Frequency.GHzValue())
				ys = append(ys, rec.SPIMem())
			}
			fit := prof.SPIMemByCores[cores]
			series := Figure3Series{
				Node: spec.Name, Cores: cores,
				FreqGHz: fs, SPIMem: ys,
				R2: fit.R2, Slope: fit.Slope,
			}
			res.Series = append(res.Series, series)
			if fit.R2 < res.MinR2 {
				res.MinR2 = fit.R2
			}
		}
	}
	return res, nil
}

// Chart renders Figure 3.
func (r Figure3Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Figure 3: SPImem vs core frequency",
		XLabel: "core frequency [GHz]",
		YLabel: "SPImem",
	}
	for _, s := range r.Series {
		c.Add(fmt.Sprintf("%s cores=%d (r2=%.2f)", s.Node, s.Cores, s.R2), s.FreqGHz, s.SPIMem)
	}
	return c
}
