package experiments

import (
	"fmt"
	"math/rand"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/isa"
	"heteromix/internal/model"
	"heteromix/internal/workloads"
)

// SensitivityResult reports how robust the reproduction's qualitative
// conclusions are to the calibrated demand constants. Because this
// repository calibrates workload demands to the paper's measurements,
// a fair question is whether its conclusions are artifacts of exact
// constants; the sensitivity sweep perturbs every per-ISA demand
// parameter by up to the given fraction and re-checks the orderings.
type SensitivityResult struct {
	Workload string
	// Perturbation is the maximum relative perturbation applied.
	Perturbation float64
	// Trials is the number of perturbed calibrations evaluated.
	Trials int
	// PPROrderingHeld counts trials where the Table 5 PPR winner was
	// unchanged.
	PPROrderingHeld int
	// MixBeatsAMDHeld counts trials where a 4 ARM + 4 AMD mix still
	// reached lower minimum energy than AMD-only within its pool.
	MixBeatsAMDHeld int
}

// Sensitivity perturbs the workload's demand constants `trials` times and
// re-evaluates the key orderings. It uses small node bounds to keep the
// sweep fast; the orderings are scale-invariant.
func (s *Suite) Sensitivity(workload string, perturbation float64, trials int) (SensitivityResult, error) {
	if perturbation <= 0 || perturbation >= 0.5 {
		return SensitivityResult{}, fmt.Errorf("experiments: perturbation %v outside (0, 0.5)", perturbation)
	}
	if trials < 1 {
		trials = 10
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return SensitivityResult{}, err
	}
	armWins := w.Name() != "rsa2048" && w.Name() != "x264"

	res := SensitivityResult{Workload: workload, Perturbation: perturbation, Trials: trials}
	rng := rand.New(rand.NewSource(s.Opts.Seed + 9000))
	for trial := 0; trial < trials; trial++ {
		pw := perturbSpec(w, perturbation, rng)
		arm, err := model.Build(hwsim.ARMCortexA9(), pw, model.BuildOptions{
			NoiseSigma: s.Opts.NoiseSigma, Seed: s.Opts.Seed + int64(trial),
		})
		if err != nil {
			return SensitivityResult{}, err
		}
		amd, err := model.Build(hwsim.AMDOpteronK10(), pw, model.BuildOptions{
			NoiseSigma: s.Opts.NoiseSigma, Seed: s.Opts.Seed + int64(trial) + 500,
		})
		if err != nil {
			return SensitivityResult{}, err
		}

		pprARM, _, err := arm.PPR()
		if err != nil {
			return SensitivityResult{}, err
		}
		pprAMD, _, err := amd.PPR()
		if err != nil {
			return SensitivityResult{}, err
		}
		if (armWins && pprARM > pprAMD) || (!armWins && pprAMD > pprARM) {
			res.PPROrderingHeld++
		}

		// Only two minima are needed from the 4x4 space, so stream it.
		space := cluster.Space{ARM: arm, AMD: amd}
		minMix, minAMD := -1.0, -1.0
		err = space.EnumerateFunc(4, 4, pw.AnalysisUnits, func(p cluster.Point) bool {
			e := float64(p.Energy)
			if p.Config.ARM.Nodes > 0 {
				if minMix < 0 || e < minMix {
					minMix = e
				}
			} else if minAMD < 0 || e < minAMD {
				minAMD = e
			}
			return true
		})
		if err != nil {
			return SensitivityResult{}, err
		}
		if minMix > 0 && minAMD > 0 && minMix < minAMD {
			res.MixBeatsAMDHeld++
		}
	}
	return res, nil
}

// perturbSpec returns a deep-copied Spec whose demand constants are each
// scaled by an independent uniform factor in [1-p, 1+p].
func perturbSpec(w workloads.Spec, p float64, rng *rand.Rand) workloads.Spec {
	jitter := func(v float64) float64 { return v * (1 + p*(2*rng.Float64()-1)) }
	d := w.Demand
	d.Translation = isa.Translation{}
	d.DRAMMissesPerKiloInstr = map[isa.ISA]float64{}
	d.DependencyStallsPerInstr = map[isa.ISA]float64{}
	for _, i := range isa.All() {
		st := w.Demand.Translation[i]
		st.PerUnit = jitter(st.PerUnit)
		d.Translation[i] = st
		d.DRAMMissesPerKiloInstr[i] = jitter(w.Demand.DRAMMissesPerKiloInstr[i])
		d.DependencyStallsPerInstr[i] = jitter(w.Demand.DependencyStallsPerInstr[i])
	}
	out := w
	out.Demand = d
	return out
}

// Format renders the result.
func (r SensitivityResult) Format() string {
	return fmt.Sprintf("Sensitivity, %s (+/-%.0f%% on demand constants, %d trials): PPR ordering held %d/%d, mix-beats-AMD held %d/%d\n",
		r.Workload, r.Perturbation*100, r.Trials,
		r.PPROrderingHeld, r.Trials, r.MixBeatsAMDHeld, r.Trials)
}
