package experiments

import (
	"fmt"

	"heteromix/internal/cluster"
	"heteromix/internal/pareto"
	"heteromix/internal/plot"
	"heteromix/internal/queueing"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// Figure 10 parameters (paper §IV-E): a pool of 16 ARM and 14 AMD nodes
// services memcached jobs of 50,000 requests over a 20-second observation
// window; arrivals are Poisson and service deterministic (M/D/1).
const (
	fig10PoolARM               = 16
	fig10PoolAMD               = 14
	fig10Window  units.Seconds = 20
)

// fig10Utilizations are the three profiles of the paper's Figure 10; the
// arrival rate grows tenfold from the first to the last.
var fig10Utilizations = []float64{0.05, 0.25, 0.50}

// QueuePoint is one configuration's outcome under job arrivals: mean
// response time per job and total energy over the observation window.
type QueuePoint struct {
	Config cluster.Configuration
	// Service is the per-job service time of the configuration.
	Service units.Seconds
	// Response is queueing wait plus service.
	Response units.Seconds
	// Utilization is this configuration's rho at the profile's rate.
	Utilization float64
	// WindowEnergy is the energy over the 20 s window: arriving jobs'
	// active energy plus the powered (used) nodes idling between jobs.
	// Unused pool nodes are off.
	WindowEnergy units.Joule
}

// QueueProfile is one utilization profile's point cloud and frontier.
// Within a profile every configuration runs at the same utilization
// U = lambda * T (the paper's definition), so each configuration's
// arrival rate is U / T: moving from the 5% to the 50% profile is the
// paper's "tenfold increase in arrival rate" for any given
// configuration.
type QueueProfile struct {
	// TargetUtilization is the profile's rho, shared by every point.
	TargetUtilization float64
	// ReferenceRate is the arrival rate of the pool's fastest
	// configuration at this utilization, for reporting.
	ReferenceRate float64
	Points        []QueuePoint
	// Frontier is the energy-response Pareto frontier.
	Frontier []pareto.TE
}

// Figure10Result holds the queueing experiment.
type Figure10Result struct {
	Workload string
	JobUnits float64
	Profiles []QueueProfile
}

// Figure10 regenerates the paper's Figure 10: the effect of job queueing
// delay on the energy-response tradeoff for a 16 ARM + 14 AMD pool
// servicing memcached jobs, at utilizations 5%, 25% and 50%.
func (s *Suite) Figure10() (Figure10Result, error) {
	return s.QueueingAnalysis("memcached", fig10PoolARM, fig10PoolAMD, 0, fig10Utilizations)
}

// QueueingAnalysis evaluates every sub-cluster configuration of the pool
// under M/D/1 arrivals at each target utilization. The arrival rate of a
// profile is chosen so the pool's fastest configuration runs at the
// target utilization; slower configurations see proportionally higher
// rho, and configurations with rho >= 1 are infeasible and dropped.
func (s *Suite) QueueingAnalysis(workload string, poolARM, poolAMD int, jobUnits float64, utilizations []float64) (Figure10Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return Figure10Result{}, err
	}
	if jobUnits <= 0 {
		jobUnits = w.AnalysisUnits
	}
	space, err := s.Space(workload)
	if err != nil {
		return Figure10Result{}, err
	}
	// §IV-E convention: unused equipment is powered off, and the
	// analysis accounts node energy only (the enclosure switch is shared
	// infrastructure outside the per-configuration comparison). This is
	// what produces the paper's two-region structure: AMD-bearing
	// configurations on the fast left, ARM-only on the efficient right,
	// separated by a sharp drop when the last 45 W-idle AMD node leaves.
	space.NoSwitchEnergy = true
	points, err := space.Enumerate(poolARM, poolAMD, jobUnits)
	if err != nil {
		return Figure10Result{}, err
	}

	// The reference service time is the pool's fastest configuration.
	fastest := points[0].Time
	for _, p := range points {
		if p.Time < fastest {
			fastest = p.Time
		}
	}

	armIdle := float64(space.ARM.Power.Idle)
	amdIdle := float64(space.AMD.Power.Idle)

	res := Figure10Result{Workload: workload, JobUnits: jobUnits}
	for _, target := range utilizations {
		refRate, err := queueing.RateForUtilization(target, fastest)
		if err != nil {
			return Figure10Result{}, err
		}
		prof := QueueProfile{TargetUtilization: target, ReferenceRate: refRate}
		// The frontier absorbs each queue point as it is computed; no
		// intermediate TE slice or sort over the 81k-point pool space.
		var f pareto.OnlineFrontier
		for _, p := range points {
			rate, err := queueing.RateForUtilization(target, p.Time)
			if err != nil {
				return Figure10Result{}, err
			}
			q := queueing.MD1{ArrivalRate: rate, ServiceTime: p.Time}
			// Idle power of the powered subset of nodes; unused pool
			// nodes are off (paper §IV-E).
			idle := units.Watt(armIdle*float64(p.Config.ARM.Nodes) +
				amdIdle*float64(p.Config.AMD.Nodes))
			e, err := q.EnergyOverWindow(fig10Window, p.Energy, idle)
			if err != nil {
				return Figure10Result{}, err
			}
			qp := QueuePoint{
				Config:       p.Config,
				Service:      p.Time,
				Response:     q.MeanResponse(),
				Utilization:  q.Utilization(),
				WindowEnergy: e,
			}
			if _, err := f.Add(pareto.TE{
				Time: float64(qp.Response), Energy: float64(qp.WindowEnergy), Index: len(prof.Points),
			}); err != nil {
				return Figure10Result{}, err
			}
			prof.Points = append(prof.Points, qp)
		}
		if len(prof.Points) == 0 {
			return Figure10Result{}, fmt.Errorf("experiments: no configuration at utilization %v", target)
		}
		prof.Frontier = f.Frontier()
		res.Profiles = append(res.Profiles, prof)
	}
	return res, nil
}

// Chart renders Figure 10 in the paper's log-log axes.
func (r Figure10Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Effect of job queueing delay (%s)", r.Workload),
		XLabel: "Response time per job [ms]",
		YLabel: fmt.Sprintf("Energy for %vs [J]", float64(fig10Window)),
		LogX:   true,
		LogY:   true,
	}
	for _, p := range r.Profiles {
		var xs, ys []float64
		for _, te := range p.Frontier {
			xs = append(xs, te.Time*1e3)
			ys = append(ys, te.Energy)
		}
		c.Add(fmt.Sprintf("Utilization=%.0f%%", p.TargetUtilization*100), xs, ys)
	}
	return c
}

// Format summarizes the profiles.
func (r Figure10Result) Format() string {
	out := fmt.Sprintf("Queueing analysis, %s, pool %d ARM + %d AMD, %v window:\n",
		r.Workload, fig10PoolARM, fig10PoolAMD, fig10Window)
	for _, p := range r.Profiles {
		fr := p.Frontier
		out += fmt.Sprintf("  U=%2.0f%% (lambda=%.2f/s): %5d stable configs, response %v..%v, energy %.0fJ..%.0fJ\n",
			p.TargetUtilization*100, p.ReferenceRate, len(p.Points),
			units.Seconds(fr[0].Time), units.Seconds(fr[len(fr)-1].Time),
			fr[len(fr)-1].Energy, fr[0].Energy)
	}
	return out
}

// FrontierSplit reports the fraction of AMD-bearing configurations among
// the profile's fastest frontier points (left end) and among its
// lowest-energy frontier points (right end) — the paper's observation
// that the leftmost part of the sweet region always includes
// high-performance nodes while the rightmost consists of ARM-only
// configurations. Each end considers up to ten points.
func (p QueueProfile) FrontierSplit() (leftAMDShare, rightAMDShare float64) {
	n := len(p.Frontier)
	if n == 0 {
		return 0, 0
	}
	k := 10
	if k > n {
		k = n
	}
	count := func(tes []pareto.TE) float64 {
		amd := 0
		for _, te := range tes {
			if p.Points[te.Index].Config.AMD.Nodes > 0 {
				amd++
			}
		}
		return float64(amd) / float64(len(tes))
	}
	return count(p.Frontier[:k]), count(p.Frontier[n-k:])
}

// SharpDrop returns the largest energy ratio between consecutive frontier
// points — the paper's "sharp drop in the energy used" that separates the
// AMD-bearing and ARM-only linear regions.
func (p QueueProfile) SharpDrop() float64 {
	max := 1.0
	for i := 1; i < len(p.Frontier); i++ {
		if r := p.Frontier[i-1].Energy / p.Frontier[i].Energy; r > max {
			max = r
		}
	}
	return max
}
