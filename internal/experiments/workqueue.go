package experiments

import (
	"fmt"

	"heteromix/internal/units"
	"heteromix/internal/workloads"
	"heteromix/internal/workqueue"
)

// WorkQueueStudy compares the paper's up-front matching split against a
// runtime pull scheduler on a model-derived 16 ARM + 14 AMD cluster:
// with perfect speed estimates the two coincide (the matching property),
// and when the planner's estimate of AMD speed is off by the given
// factor, the static split's idle-tail energy grows while the pull
// scheduler self-corrects.
type WorkQueueStudy struct {
	Workload string
	// PerfectStatic/Pull are the outcomes with correct estimates.
	PerfectStatic workqueue.Result
	Pull          workqueue.Result
	// MisStatic is the static outcome when the planner believed the ARM
	// nodes to be MisFactor faster than they are.
	MisFactor float64
	MisStatic workqueue.Result
}

// WorkQueue runs the study for one workload.
func (s *Suite) WorkQueue(workload string, misFactor float64) (WorkQueueStudy, error) {
	if misFactor <= 0 {
		return WorkQueueStudy{}, fmt.Errorf("experiments: mis-estimation factor %v", misFactor)
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return WorkQueueStudy{}, err
	}
	armM, err := s.Model(workload, s.ARM)
	if err != nil {
		return WorkQueueStudy{}, err
	}
	amdM, err := s.Model(workload, s.AMD)
	if err != nil {
		return WorkQueueStudy{}, err
	}

	build := func() ([]workqueue.Node, []units.Seconds, error) {
		var nodes []workqueue.Node
		var est []units.Seconds
		for i := 0; i < 16; i++ {
			pred, err := armM.Predict(maxConfig(s.ARM), 1)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, workqueue.Node{
				Name: "arm", PerUnit: pred.Time, Jitter: 0.03,
				ActivePower: pred.AvgPower, IdlePower: armM.Power.Idle,
			})
			est = append(est, pred.Time)
		}
		for i := 0; i < 14; i++ {
			pred, err := amdM.Predict(maxConfig(s.AMD), 1)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, workqueue.Node{
				Name: "amd", PerUnit: pred.Time, Jitter: 0.03,
				ActivePower: pred.AvgPower, IdlePower: amdM.Power.Idle,
			})
			est = append(est, pred.Time)
		}
		return nodes, est, nil
	}

	nodes, est, err := build()
	if err != nil {
		return WorkQueueStudy{}, err
	}
	jobUnits := w.AnalysisUnits
	opts := workqueue.Options{
		// Fine pull granularity: ~500 chunks per node keeps the pull
		// scheduler's residual skew well under the mis-estimation effects
		// being measured.
		ChunkUnits: jobUnits / (float64(len(nodes)) * 500),
		Seed:       s.Opts.Seed,
	}

	study := WorkQueueStudy{Workload: workload, MisFactor: misFactor}
	fr, err := workqueue.MatchingFractions(est)
	if err != nil {
		return WorkQueueStudy{}, err
	}
	if study.PerfectStatic, err = workqueue.RunStatic(nodes, jobUnits, fr, opts); err != nil {
		return WorkQueueStudy{}, err
	}
	if study.Pull, err = workqueue.Run(nodes, jobUnits, opts); err != nil {
		return WorkQueueStudy{}, err
	}

	// Mis-estimate the ARM nodes as misFactor faster than they are (say,
	// profiled unloaded): the static split then overloads the cheap ARM
	// side, and the 45 W-idle AMD nodes burn the wait — the costly
	// failure mode an up-front split risks.
	misEst := append([]units.Seconds(nil), est...)
	for i := 0; i < 16; i++ {
		misEst[i] = units.Seconds(float64(misEst[i]) / misFactor)
	}
	misFr, err := workqueue.MatchingFractions(misEst)
	if err != nil {
		return WorkQueueStudy{}, err
	}
	if study.MisStatic, err = workqueue.RunStatic(nodes, jobUnits, misFr, opts); err != nil {
		return WorkQueueStudy{}, err
	}
	return study, nil
}

// Format renders the study.
func (r WorkQueueStudy) Format() string {
	return fmt.Sprintf("Work queue study, %s (16 ARM + 14 AMD):\n"+
		"  static (perfect estimates): makespan %v, idle tail %v\n"+
		"  pull scheduler:             makespan %v, idle tail %v\n"+
		"  static (ARM speed mis-estimated %.1fx): makespan %v, idle tail %v\n",
		r.Workload,
		r.PerfectStatic.Makespan, r.PerfectStatic.IdleTail,
		r.Pull.Makespan, r.Pull.IdleTail,
		r.MisFactor, r.MisStatic.Makespan, r.MisStatic.IdleTail)
}
