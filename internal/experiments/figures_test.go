package experiments

import (
	"math"
	"strings"
	"testing"

	"heteromix/internal/budget"
	"heteromix/internal/units"
)

// Additional coverage for the figure helpers beyond the headline
// structural tests in experiments_test.go.

func TestMixFrontierEnergyAt(t *testing.T) {
	r, err := sharedSuite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	mix := r.Series[1] // ARM 16:AMD 14
	if _, ok := mix.EnergyAt(units.Seconds(1e-6)); ok {
		t.Error("microsecond deadline should be infeasible")
	}
	e, ok := mix.EnergyAt(units.Seconds(10))
	if !ok {
		t.Fatal("10 s deadline should be feasible")
	}
	if e != mix.MinEnergy {
		t.Errorf("relaxed deadline energy %v != min energy %v", e, mix.MinEnergy)
	}
	// Energy at the fastest deadline is the frontier's top.
	eFast, ok := mix.EnergyAt(mix.MinTime)
	if !ok {
		t.Fatal("fastest deadline should be feasible at its own time")
	}
	if float64(eFast) < float64(mix.MinEnergy) {
		t.Error("fastest config cannot be cheaper than the minimum")
	}
}

func TestMixSeriesChartUsesLogAxis(t *testing.T) {
	r, err := sharedSuite().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	c := r.Chart()
	if !c.LogX {
		t.Error("mix series charts use the paper's log deadline axis")
	}
	if _, err := c.RenderASCII(70, 18); err != nil {
		t.Errorf("render: %v", err)
	}
	if _, err := c.RenderSVG(800, 600); err != nil {
		t.Errorf("svg: %v", err)
	}
}

func TestMixSeriesCustomJobUnits(t *testing.T) {
	// Doubling the job size doubles every frontier time and energy
	// (model linearity propagated through the whole mix analysis).
	base, err := sharedSuite().MixSeries("ep", paperMixesForTest(), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := sharedSuite().MixSeries("ep", paperMixesForTest(), 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Series {
		tRatio := float64(doubled.Series[i].MinTime) / float64(base.Series[i].MinTime)
		eRatio := float64(doubled.Series[i].MinEnergy) / float64(base.Series[i].MinEnergy)
		if math.Abs(tRatio-2) > 1e-9 || math.Abs(eRatio-2) > 1e-9 {
			t.Errorf("series %d: ratios %v/%v, want 2/2", i, tRatio, eRatio)
		}
	}
}

func TestFrontierAnalysisCustomJob(t *testing.T) {
	r, err := sharedSuite().FrontierAnalysis("ep", 2, 2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if r.JobUnits != 1e6 {
		t.Errorf("job units = %v", r.JobUnits)
	}
	if len(r.Points) != 1516 { // 2*20*2*18 + 2*20 + 2*18
		t.Errorf("space size = %d, want 1516", len(r.Points))
	}
}

func TestSortedByTime(t *testing.T) {
	r, err := sharedSuite().FrontierAnalysis("ep", 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := r.SortedByTime()
	if len(idx) != len(r.Points) {
		t.Fatalf("index size %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		a, b := r.Points[idx[i-1]], r.Points[idx[i]]
		if a.Time > b.Time {
			t.Fatalf("not sorted at %d", i)
		}
		if a.Time == b.Time && a.Energy > b.Energy {
			t.Fatalf("tie not broken by energy at %d", i)
		}
	}
}

func TestFigure10FrontierSplitEnds(t *testing.T) {
	r, err := sharedSuite().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	p := r.Profiles[0]
	left, right := p.FrontierSplit()
	if left <= right {
		t.Errorf("fast end AMD share %v should exceed low-energy end %v", left, right)
	}
	if p.SharpDrop() <= 1 {
		t.Error("frontier should have decreasing energy steps")
	}
}

func TestQueueValidationFormats(t *testing.T) {
	rows, err := sharedSuite().QueueModelValidation(0.05, []float64{0.1}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(FormatQueueValidation(rows), "rho=0.10") {
		t.Error("format broken")
	}
}

func TestEnergyAtDeadlineConsistentWithFrontier(t *testing.T) {
	r, err := sharedSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// At each frontier knot, EnergyAtDeadline returns exactly that knot.
	for _, te := range r.Frontier {
		e, p, ok := r.EnergyAtDeadline(units.Seconds(te.Time))
		if !ok {
			t.Fatalf("knot %v infeasible", te.Time)
		}
		if float64(e) != te.Energy {
			t.Errorf("knot %v: energy %v != %v", te.Time, e, te.Energy)
		}
		if float64(p.Time) > te.Time {
			t.Errorf("knot %v: returned config misses its own deadline", te.Time)
		}
	}
}

func paperMixesForTest() []budget.Mix {
	return []budget.Mix{{ARM: 8, AMD: 1}, {ARM: 16, AMD: 2}}
}
