package experiments

import (
	"fmt"

	"heteromix/internal/budget"
	"heteromix/internal/cluster"
	"heteromix/internal/pareto"
	"heteromix/internal/plot"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// MixFrontier is the minimum-energy-versus-deadline curve of one node
// pool: the Pareto frontier over every configuration the pool admits —
// any subset of its nodes (unused nodes are powered off, paper §IV-E)
// at any per-node (cores, frequency) setting. One curve of Figures 6-9.
// Treating the mix as a pool rather than a fixed allocation is what
// gives each curve its deadline-energy span, and why the paper's
// Figure 8 curves share one energy floor: a larger pool's sub-space is
// a superset of a smaller one's.
type MixFrontier struct {
	Mix      budget.Mix
	Frontier []pareto.TE
	// MinTime is the mix's fastest achievable service time and MinEnergy
	// its lowest job energy.
	MinTime   units.Seconds
	MinEnergy units.Joule
}

// MixSeriesResult is a family of mix frontiers for one workload.
type MixSeriesResult struct {
	Workload string
	JobUnits float64
	Series   []MixFrontier
}

// Figure6 regenerates the paper's Figure 6: the 1 kW-budget mix series
// for memcached (ARM 0:AMD 16 through ARM 128:AMD 0).
func (s *Suite) Figure6() (MixSeriesResult, error) {
	return s.MixSeries("memcached", budget.PaperBudgetSeries(), 0)
}

// Figure7 regenerates the paper's Figure 7: the same series for EP.
func (s *Suite) Figure7() (MixSeriesResult, error) {
	return s.MixSeries("ep", budget.PaperBudgetSeries(), 0)
}

// Figure8 regenerates the paper's Figure 8: the 8:1-ratio scaling series
// for memcached (ARM 8:AMD 1 doubling to ARM 128:AMD 16).
func (s *Suite) Figure8() (MixSeriesResult, error) {
	mixes, err := budget.ScalingSeries(8, 5)
	if err != nil {
		return MixSeriesResult{}, err
	}
	return s.MixSeries("memcached", mixes, 0)
}

// Figure9 regenerates the paper's Figure 9: the scaling series for EP.
func (s *Suite) Figure9() (MixSeriesResult, error) {
	mixes, err := budget.ScalingSeries(8, 5)
	if err != nil {
		return MixSeriesResult{}, err
	}
	return s.MixSeries("ep", mixes, 0)
}

// MixSeries computes the frontier of every mix in the series for the
// workload (jobUnits = 0 selects the workload's analysis job size).
func (s *Suite) MixSeries(workload string, mixes []budget.Mix, jobUnits float64) (MixSeriesResult, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return MixSeriesResult{}, err
	}
	if jobUnits <= 0 {
		jobUnits = w.AnalysisUnits
	}
	// One shared compiled table serves every mix of the series (and
	// every other stage touching this workload); the walk is
	// bit-identical to Space.EnumerateFunc.
	tbl, err := s.Table(workload, false)
	if err != nil {
		return MixSeriesResult{}, err
	}
	res := MixSeriesResult{Workload: workload, JobUnits: jobUnits}
	for _, m := range mixes {
		// Only the frontier is kept per mix, so stream the sub-space
		// through an online frontier instead of materializing it: the
		// series' point slices (36k+ entries each) never exist.
		var f pareto.OnlineFrontier
		var insErr error
		i := 0
		err := tbl.ForEach(m.ARM, m.AMD, jobUnits, func(p cluster.Point) bool {
			_, insErr = f.Add(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy), Index: i})
			i++
			return insErr == nil
		})
		if err == nil {
			err = insErr
		}
		if err != nil {
			return MixSeriesResult{}, err
		}
		fr := f.Frontier()
		res.Series = append(res.Series, MixFrontier{
			Mix:       m,
			Frontier:  fr,
			MinTime:   units.Seconds(pareto.MinTime(fr)),
			MinEnergy: units.Joule(pareto.MinEnergy(fr)),
		})
	}
	return res, nil
}

// Chart renders the series with the paper's log-scale deadline axis.
func (r MixSeriesResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Heterogeneous mixes for %s", r.Workload),
		XLabel: "Deadline [ms]",
		YLabel: "Minimum energy [J]",
		LogX:   true,
	}
	for _, mf := range r.Series {
		var xs, ys []float64
		for _, te := range mf.Frontier {
			xs = append(xs, te.Time*1e3)
			ys = append(ys, te.Energy)
		}
		c.Add(mf.Mix.String(), xs, ys)
	}
	return c
}

// Format summarizes each mix's frontier.
func (r MixSeriesResult) Format() string {
	out := fmt.Sprintf("%s (%.0f units/job):\n", r.Workload, r.JobUnits)
	for _, mf := range r.Series {
		out += fmt.Sprintf("  %-16s fastest %8v  min energy %9v  (%d frontier points)\n",
			mf.Mix, mf.MinTime, mf.MinEnergy, len(mf.Frontier))
	}
	return out
}

// EnergyAt returns the mix's minimum energy within a deadline, with
// ok = false when the mix cannot meet it.
func (mf MixFrontier) EnergyAt(deadline units.Seconds) (units.Joule, bool) {
	te, ok := pareto.EnergyAtDeadline(mf.Frontier, float64(deadline))
	if !ok {
		return 0, false
	}
	return units.Joule(te.Energy), true
}
