package experiments

import (
	"fmt"

	"heteromix/internal/cluster"
	"heteromix/internal/dispatcher"
	"heteromix/internal/queueing"
	"heteromix/internal/stats"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// EndToEndRow compares, for one cluster configuration under job
// arrivals, the analytical pipeline's predictions (matching-split model
// for service time and energy, M/D/1 for waiting, closed-form window
// energy) against a discrete-event dispatcher simulation of the same
// configuration — the reproduction's final, whole-stack validation.
type EndToEndRow struct {
	Config      cluster.Configuration
	ArrivalRate float64
	// Analytic and simulated mean response.
	AnalyticResponse  units.Seconds
	SimulatedResponse units.Seconds
	ResponseErr       float64 // percent
	// Analytic and simulated window energy.
	AnalyticEnergy  units.Joule
	SimulatedEnergy units.Joule
	EnergyErr       float64 // percent
}

// EndToEndValidation provisions the paper's 16 ARM + 14 AMD memcached
// pool at the given utilization, then simulates a window of Poisson
// traffic against a spread of frontier configurations and reports
// analytic-versus-simulated errors.
func (s *Suite) EndToEndValidation(utilization float64, window units.Seconds) ([]EndToEndRow, error) {
	if utilization <= 0 || utilization >= 1 {
		return nil, fmt.Errorf("experiments: utilization %v outside (0,1)", utilization)
	}
	if window <= 0 {
		window = 200
	}
	fig10, err := s.QueueingAnalysis("memcached", 16, 14, 0, []float64{utilization})
	if err != nil {
		return nil, err
	}
	prof := fig10.Profiles[0]

	w, err := workloads.ByName("memcached")
	if err != nil {
		return nil, err
	}
	space, err := s.Space(w.Name())
	if err != nil {
		return nil, err
	}
	space.NoSwitchEnergy = true

	// Sample a spread of frontier points: fastest, middle, cheapest.
	picks := []int{0, len(prof.Frontier) / 2, len(prof.Frontier) - 1}
	var rows []EndToEndRow
	for i, fi := range picks {
		te := prof.Frontier[fi]
		qp := prof.Points[te.Index]

		rate, err := queueing.RateForUtilization(utilization, qp.Service)
		if err != nil {
			return nil, err
		}
		q := queueing.MD1{ArrivalRate: rate, ServiceTime: qp.Service}

		// Reconstruct the cluster abstraction from the model.
		ev, err := cluster.Evaluate(space.Groups(qp.Config), w.AnalysisUnits)
		if err != nil {
			return nil, err
		}
		idle := units.Watt(float64(space.ARM.Power.Idle)*float64(qp.Config.ARM.Nodes) +
			float64(space.AMD.Power.Idle)*float64(qp.Config.AMD.Nodes))
		c := dispatcher.Cluster{Service: ev.Time, PerJob: ev.Energy, IdlePower: idle}

		sim, err := dispatcher.Run(c, rate, dispatcher.Options{
			Window: window,
			Seed:   s.Opts.Seed + int64(100+i),
		})
		if err != nil {
			return nil, err
		}
		analyticE, err := q.EnergyOverWindow(window, ev.Energy, idle)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EndToEndRow{
			Config:            qp.Config,
			ArrivalRate:       rate,
			AnalyticResponse:  q.MeanResponse(),
			SimulatedResponse: sim.MeanResponse,
			ResponseErr:       stats.RelativeError(float64(q.MeanResponse()), float64(sim.MeanResponse)),
			AnalyticEnergy:    analyticE,
			SimulatedEnergy:   sim.Energy,
			EnergyErr:         stats.RelativeError(float64(analyticE), float64(sim.Energy)),
		})
	}
	return rows, nil
}

// FormatEndToEnd renders the rows.
func FormatEndToEnd(rows []EndToEndRow) string {
	out := "End-to-end validation (analytic pipeline vs dispatcher simulation):\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-46s R: %v vs %v (%.1f%%)  E: %v vs %v (%.1f%%)\n",
			r.Config.String(),
			r.AnalyticResponse, r.SimulatedResponse, r.ResponseErr,
			r.AnalyticEnergy, r.SimulatedEnergy, r.EnergyErr)
	}
	return out
}
