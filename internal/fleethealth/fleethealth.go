// Package fleethealth turns a static replica URL list into a live,
// health-probed replica set. An active Prober issues periodic /readyz
// checks (jittered intervals, per-probe timeout, backoff on dead
// targets) and drives a per-replica state machine
//
//	healthy → suspect → dead → recovering → healthy
//
// with consecutive-success/failure thresholds and hysteresis: a single
// failed probe only makes a replica suspect (still routable, so a lost
// probe never sheds traffic), sustained failures make it dead (shards
// fail over away from it), and a dead replica must answer ReviveAfter
// consecutive probes before it is routable again — so a flapping
// replica cannot thrash routing on every oscillation.
//
// The state of the whole set is published as a versioned ReplicaSet
// snapshot behind an atomic pointer: coordinators read it lock-free on
// every fan-out, and the version increments on every state transition
// so observers can cheaply detect change.
package fleethealth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// State is one replica's position in the health state machine.
type State int

const (
	// Healthy replicas take traffic and primary shard assignments.
	Healthy State = iota
	// Suspect replicas have missed recent probes but not enough to be
	// declared dead; they still take traffic (hedging and failover cover
	// the risk) so one lost probe never sheds a healthy replica.
	Suspect
	// Dead replicas have missed DeadAfter consecutive probes; shards
	// fail over away from them and routing skips them.
	Dead
	// Recovering replicas have answered a probe after being dead but
	// have not yet answered ReviveAfter in a row; they stay out of
	// routing until they do (hysteresis against flapping).
	Recovering
)

// String names the state (also its JSON wire form).
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ParseState inverts String for the JSON forms.
func ParseState(s string) (State, error) {
	switch s {
	case "healthy":
		return Healthy, nil
	case "suspect":
		return Suspect, nil
	case "dead":
		return Dead, nil
	case "recovering":
		return Recovering, nil
	default:
		return 0, fmt.Errorf("fleethealth: unknown state %q", s)
	}
}

// Routable reports whether a replica in this state should receive
// traffic: healthy and suspect do, dead and recovering do not.
func (s State) Routable() bool { return s == Healthy || s == Suspect }

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	if s < Healthy || s > Recovering {
		return nil, fmt.Errorf("fleethealth: cannot marshal %v", s)
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a state name; unknown names are an error, never
// a panic (this surface is fuzzed).
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	st, err := ParseState(name)
	if err != nil {
		return err
	}
	*s = st
	return nil
}

// Replica is one target's published health.
type Replica struct {
	URL   string `json:"url"`
	State State  `json:"state"`
	// ConsecutiveFailures / ConsecutiveSuccesses are the streak counters
	// the thresholds read; exactly one is nonzero.
	ConsecutiveFailures  int `json:"consecutive_failures,omitempty"`
	ConsecutiveSuccesses int `json:"consecutive_successes,omitempty"`
	// LastError is the most recent probe failure, empty after a success.
	LastError string `json:"last_error,omitempty"`
}

// ReplicaSet is an immutable snapshot of the whole set. Version
// increments on every state transition, so two snapshots with equal
// versions carry equal states.
type ReplicaSet struct {
	Version  uint64    `json:"version"`
	Replicas []Replica `json:"replicas"`
}

// Routable reports whether url may receive traffic. Unknown URLs are
// routable: an operator-supplied override the prober does not track is
// the caller's responsibility.
func (rs *ReplicaSet) Routable(url string) bool {
	for i := range rs.Replicas {
		if rs.Replicas[i].URL == url {
			return rs.Replicas[i].State.Routable()
		}
	}
	return true
}

// Get returns url's entry.
func (rs *ReplicaSet) Get(url string) (Replica, bool) {
	for i := range rs.Replicas {
		if rs.Replicas[i].URL == url {
			return rs.Replicas[i], true
		}
	}
	return Replica{}, false
}

// Options tunes a Prober. Zero values take the documented defaults.
type Options struct {
	// Targets are the replica base URLs to probe. Required, order is
	// preserved in snapshots.
	Targets []string
	// Interval is the base probe period per target (default 2s). Each
	// wait is jittered ±Jitter so a fleet of probers never phase-locks.
	Interval time.Duration
	// Jitter is the fractional spread applied to Interval (default 0.2,
	// must be in [0, 1)).
	Jitter float64
	// Timeout bounds one probe (default Interval/2, floored at 1ms).
	Timeout time.Duration
	// SuspectAfter is the consecutive-failure count that demotes healthy
	// to suspect (default 1).
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that declares a replica
	// dead (default 3; must be >= SuspectAfter).
	DeadAfter int
	// ReviveAfter is the consecutive-success count a dead replica needs
	// to be routable again (default 2). Any failure while recovering
	// drops it straight back to dead.
	ReviveAfter int
	// MaxBackoff caps the stretched probe period for dead targets
	// (default 4×Interval): a long-dead replica is probed lazily, a
	// freshly dead one aggressively.
	MaxBackoff time.Duration
	// Probe checks one target, nil error meaning ready. Default: HTTP
	// GET target+"/readyz" validated by ReadyzOK.
	Probe func(ctx context.Context, target string) error
	// OnTransition observes every state change (called outside the
	// snapshot publish, may be used for gauges/logs; keep it cheap).
	OnTransition func(target string, from, to State)
	// Seed fixes the jitter streams for reproducible tests.
	Seed int64
}

// probeStatus is one target's mutable state, guarded by Prober.mu.
type probeStatus struct {
	state     State
	failures  int
	successes int
	lastErr   string
}

// Prober runs the probe loops and publishes snapshots. Construct with
// New; safe for concurrent use.
type Prober struct {
	opts Options

	snap atomic.Pointer[ReplicaSet]

	mu      sync.Mutex
	states  []probeStatus
	version uint64

	startOnce sync.Once
	stopOnce  sync.Once
	cancel    context.CancelFunc
	wg        sync.WaitGroup
}

// New validates opts and builds a stopped Prober; call Start to begin
// probing. Every target starts healthy (optimistic: routing works
// before the first probe lands; request-time failover covers a target
// that was already dead).
func New(opts Options) (*Prober, error) {
	if len(opts.Targets) == 0 {
		return nil, errors.New("fleethealth: at least one target is required")
	}
	if opts.Interval < 0 {
		return nil, fmt.Errorf("fleethealth: negative probe interval %v", opts.Interval)
	}
	if opts.Interval == 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		return nil, fmt.Errorf("fleethealth: jitter must be in [0, 1), got %v", opts.Jitter)
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.2
	}
	if opts.Timeout < 0 {
		return nil, fmt.Errorf("fleethealth: negative probe timeout %v", opts.Timeout)
	}
	if opts.Timeout == 0 {
		opts.Timeout = max(opts.Interval/2, time.Millisecond)
	}
	if opts.SuspectAfter < 0 || opts.DeadAfter < 0 || opts.ReviveAfter < 0 {
		return nil, errors.New("fleethealth: thresholds must be positive")
	}
	if opts.SuspectAfter == 0 {
		opts.SuspectAfter = 1
	}
	if opts.DeadAfter == 0 {
		opts.DeadAfter = 3
	}
	if opts.ReviveAfter == 0 {
		opts.ReviveAfter = 2
	}
	if opts.DeadAfter < opts.SuspectAfter {
		return nil, fmt.Errorf("fleethealth: dead-after %d below suspect-after %d",
			opts.DeadAfter, opts.SuspectAfter)
	}
	if opts.MaxBackoff < 0 {
		return nil, fmt.Errorf("fleethealth: negative max backoff %v", opts.MaxBackoff)
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 4 * opts.Interval
	}
	if opts.Probe == nil {
		opts.Probe = HTTPReadyzProbe(nil)
	}
	p := &Prober{opts: opts, states: make([]probeStatus, len(opts.Targets))}
	p.version = 1
	p.publishLocked()
	return p, nil
}

// Start launches one probe loop per target. Idempotent.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		p.cancel = cancel
		for i := range p.opts.Targets {
			p.wg.Add(1)
			go p.loop(ctx, i)
		}
	})
}

// Stop halts the probe loops and waits for them. Idempotent; a Prober
// that was never started stops trivially.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() {
		if p.cancel != nil {
			p.cancel()
		}
		p.wg.Wait()
	})
}

// Snapshot returns the current versioned view. Lock-free: one atomic
// pointer load, safe to call on every request.
func (p *Prober) Snapshot() *ReplicaSet { return p.snap.Load() }

// ProbeNow probes every target once, synchronously, and applies the
// results — how tests (and an operator endpoint) force a round without
// waiting out the interval.
func (p *Prober) ProbeNow(ctx context.Context) {
	for i := range p.opts.Targets {
		p.probeOne(ctx, i)
	}
}

// loop is one target's probe cadence: jittered interval while routable,
// stretched toward MaxBackoff while dead.
func (p *Prober) loop(ctx context.Context, i int) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(p.opts.Seed + int64(i)*0x9e3779b9))
	for {
		d := p.nextDelay(i, rng)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		p.probeOne(ctx, i)
	}
}

// nextDelay draws the jittered wait before target i's next probe.
func (p *Prober) nextDelay(i int, rng *rand.Rand) time.Duration {
	base := p.opts.Interval
	p.mu.Lock()
	st := p.states[i]
	p.mu.Unlock()
	if st.state == Dead && st.failures > p.opts.DeadAfter {
		// Already-confirmed-dead targets back off exponentially so a
		// long outage does not burn probe traffic, capped so revival is
		// still noticed within MaxBackoff.
		extra := st.failures - p.opts.DeadAfter
		if extra > 8 {
			extra = 8
		}
		base <<= uint(extra)
		if base > p.opts.MaxBackoff || base <= 0 {
			base = p.opts.MaxBackoff
		}
	}
	j := p.opts.Jitter
	f := 1 + j*(2*rng.Float64()-1) // uniform in [1-j, 1+j]
	return time.Duration(float64(base) * f)
}

// probeOne runs one probe against target i and records the outcome.
// Outcomes observed while the prober itself is shutting down are
// discarded: a cancelled probe says nothing about the replica.
func (p *Prober) probeOne(ctx context.Context, i int) {
	pctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	err := p.opts.Probe(pctx, p.opts.Targets[i])
	cancel()
	if ctx.Err() != nil {
		return
	}
	p.record(i, err)
}

// record applies one probe outcome to target i's state machine and
// publishes a fresh snapshot when anything changed.
func (p *Prober) record(i int, err error) {
	p.mu.Lock()
	st := &p.states[i]
	from := st.state
	if err == nil {
		st.successes++
		st.failures = 0
		st.lastErr = ""
		switch st.state {
		case Suspect:
			// One good probe clears suspicion: hysteresis guards only the
			// dead→routable edge, where flapping is expensive.
			st.state = Healthy
		case Dead:
			st.state = Recovering
			if st.successes >= p.opts.ReviveAfter {
				st.state = Healthy
			}
		case Recovering:
			if st.successes >= p.opts.ReviveAfter {
				st.state = Healthy
			}
		}
	} else {
		st.failures++
		st.successes = 0
		st.lastErr = err.Error()
		switch st.state {
		case Healthy:
			if st.failures >= p.opts.SuspectAfter {
				st.state = Suspect
			}
			if st.failures >= p.opts.DeadAfter {
				st.state = Dead
			}
		case Suspect:
			if st.failures >= p.opts.DeadAfter {
				st.state = Dead
			}
		case Recovering:
			// A failure mid-recovery re-confirms death; the success streak
			// must be consecutive.
			st.state = Dead
		}
	}
	to := st.state
	if to != from {
		p.version++
	}
	p.publishLocked()
	p.mu.Unlock()
	if to != from && p.opts.OnTransition != nil {
		p.opts.OnTransition(p.opts.Targets[i], from, to)
	}
}

// publishLocked swaps in a fresh immutable snapshot. Caller holds mu.
func (p *Prober) publishLocked() {
	rs := &ReplicaSet{Version: p.version, Replicas: make([]Replica, len(p.opts.Targets))}
	for i, t := range p.opts.Targets {
		st := p.states[i]
		rs.Replicas[i] = Replica{
			URL:                  t,
			State:                st.state,
			ConsecutiveFailures:  st.failures,
			ConsecutiveSuccesses: st.successes,
			LastError:            st.lastErr,
		}
	}
	p.snap.Store(rs)
}

// maxReadyzBody bounds one readiness response read; /readyz bodies are
// a few dozen bytes, anything huge is itself a failure.
const maxReadyzBody = 1 << 16

// HTTPReadyzProbe returns the default probe: GET target+"/readyz"
// through hc (nil means http.DefaultClient), validated by ReadyzOK.
func HTTPReadyzProbe(hc *http.Client) func(ctx context.Context, target string) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	return func(ctx context.Context, target string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxReadyzBody))
		if err != nil {
			return err
		}
		return ReadyzOK(resp.StatusCode, body)
	}
}

// ReadyzOK decides whether one readiness answer means "routable": a 200
// whose JSON body reports status "ready". A draining replica answers
// 503 {"status":"draining"} and correctly probes not-ready; malformed
// bodies are a failure, never a panic (this parser is fuzzed).
func ReadyzOK(status int, body []byte) error {
	if status != http.StatusOK {
		return fmt.Errorf("fleethealth: readyz answered %d", status)
	}
	var v struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("fleethealth: malformed readyz body: %v", err)
	}
	if v.Status != "ready" {
		return fmt.Errorf("fleethealth: readyz status %q", v.Status)
	}
	return nil
}
