package fleethealth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// scriptedProbe fails target t while failing[t] is true.
type scriptedProbe struct {
	mu      sync.Mutex
	failing map[string]bool
}

func (sp *scriptedProbe) fn(_ context.Context, target string) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.failing[target] {
		return errors.New("scripted failure")
	}
	return nil
}

func (sp *scriptedProbe) set(target string, fail bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.failing[target] = fail
}

func newScripted(t *testing.T, targets []string, opts Options) (*Prober, *scriptedProbe) {
	t.Helper()
	sp := &scriptedProbe{failing: map[string]bool{}}
	opts.Targets = targets
	opts.Probe = sp.fn
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, sp
}

func stateOf(t *testing.T, p *Prober, url string) State {
	t.Helper()
	rep, ok := p.Snapshot().Get(url)
	if !ok {
		t.Fatalf("snapshot has no entry for %s", url)
	}
	return rep.State
}

// TestStateMachineTransitions walks the full lifecycle with the
// documented default thresholds: one failure → suspect, three → dead,
// two consecutive successes → healthy again via recovering.
func TestStateMachineTransitions(t *testing.T) {
	p, sp := newScripted(t, []string{"a"}, Options{})
	ctx := context.Background()

	if got := stateOf(t, p, "a"); got != Healthy {
		t.Fatalf("initial state %v, want healthy", got)
	}
	sp.set("a", true)
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	if stateOf(t, p, "a").Routable() != true {
		t.Fatal("suspect must remain routable")
	}
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Suspect {
		t.Fatalf("after 2 failures: %v, want suspect (dead-after is 3)", got)
	}
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Dead {
		t.Fatalf("after 3 failures: %v, want dead", got)
	}
	if stateOf(t, p, "a").Routable() {
		t.Fatal("dead must not be routable")
	}
	// First success: recovering, still not routable.
	sp.set("a", false)
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Recovering {
		t.Fatalf("after 1 success: %v, want recovering", got)
	}
	if stateOf(t, p, "a").Routable() {
		t.Fatal("recovering must not be routable")
	}
	// Second consecutive success: healthy.
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Healthy {
		t.Fatalf("after 2 successes: %v, want healthy", got)
	}
}

// TestSuspectClearsOnOneSuccess: hysteresis only guards the
// dead→routable edge; a suspect replica is rehabilitated by a single
// good probe.
func TestSuspectClearsOnOneSuccess(t *testing.T) {
	p, sp := newScripted(t, []string{"a"}, Options{})
	ctx := context.Background()
	sp.set("a", true)
	p.ProbeNow(ctx)
	sp.set("a", false)
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Healthy {
		t.Fatalf("suspect after one success: %v, want healthy", got)
	}
}

// TestFlappingReplicaStaysDead: a replica alternating pass/fail never
// accumulates ReviveAfter consecutive successes, so once dead it stays
// unroutable instead of thrashing the routing table.
func TestFlappingReplicaStaysDead(t *testing.T) {
	p, sp := newScripted(t, []string{"a"}, Options{ReviveAfter: 2})
	ctx := context.Background()
	sp.set("a", true)
	for i := 0; i < 3; i++ {
		p.ProbeNow(ctx)
	}
	if got := stateOf(t, p, "a"); got != Dead {
		t.Fatalf("setup: %v, want dead", got)
	}
	for i := 0; i < 10; i++ {
		sp.set("a", i%2 == 0) // fail, pass, fail, pass...
		p.ProbeNow(ctx)
		if st := stateOf(t, p, "a"); st.Routable() {
			t.Fatalf("flap round %d: state %v became routable", i, st)
		}
	}
}

// TestFailureDuringRecoveryReconfirmsDead.
func TestFailureDuringRecoveryReconfirmsDead(t *testing.T) {
	p, sp := newScripted(t, []string{"a"}, Options{DeadAfter: 1})
	ctx := context.Background()
	sp.set("a", true)
	p.ProbeNow(ctx)
	sp.set("a", false)
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Recovering {
		t.Fatalf("setup: %v, want recovering", got)
	}
	sp.set("a", true)
	p.ProbeNow(ctx)
	if got := stateOf(t, p, "a"); got != Dead {
		t.Fatalf("failure during recovery: %v, want dead", got)
	}
}

// TestSnapshotVersionMonotonic: the version bumps exactly on state
// transitions and never regresses; snapshots are immutable values.
func TestSnapshotVersionMonotonic(t *testing.T) {
	p, sp := newScripted(t, []string{"a", "b"}, Options{})
	ctx := context.Background()
	v0 := p.Snapshot().Version
	p.ProbeNow(ctx) // both healthy, both succeed: no transition
	if v := p.Snapshot().Version; v != v0 {
		t.Fatalf("version moved %d → %d without a transition", v0, v)
	}
	sp.set("a", true)
	p.ProbeNow(ctx) // a: healthy → suspect
	v1 := p.Snapshot().Version
	if v1 <= v0 {
		t.Fatalf("version did not advance on a transition: %d → %d", v0, v1)
	}
	if got := stateOf(t, p, "b"); got != Healthy {
		t.Fatalf("b caught a's transition: %v", got)
	}
}

// TestOnTransitionHook observes the full healthy→…→healthy sequence.
func TestOnTransitionHook(t *testing.T) {
	var mu sync.Mutex
	var seq []string
	sp := &scriptedProbe{failing: map[string]bool{}}
	p, err := New(Options{
		Targets: []string{"a"},
		Probe:   sp.fn,
		OnTransition: func(target string, from, to State) {
			mu.Lock()
			seq = append(seq, fmt.Sprintf("%s:%v→%v", target, from, to))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sp.set("a", true)
	for i := 0; i < 3; i++ {
		p.ProbeNow(ctx)
	}
	sp.set("a", false)
	p.ProbeNow(ctx)
	p.ProbeNow(ctx)
	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"a:healthy→suspect", "a:suspect→dead",
		"a:dead→recovering", "a:recovering→healthy",
	}
	if len(seq) != len(want) {
		t.Fatalf("transition sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q (full: %v)", i, seq[i], want[i], seq)
		}
	}
}

// TestProberLoopDetectsKillAndRevive runs the real goroutine loops
// against an httptest replica that is killed and revived.
func TestProberLoopDetectsKillAndRevive(t *testing.T) {
	var killed sync.Map
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, dead := killed.Load("x"); dead {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"dead"}`))
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	}))
	defer hs.Close()

	p, err := New(Options{
		Targets:   []string{hs.URL},
		Interval:  5 * time.Millisecond,
		DeadAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if rep, ok := p.Snapshot().Get(hs.URL); ok && rep.State == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		rep, _ := p.Snapshot().Get(hs.URL)
		t.Fatalf("state never reached %v (stuck at %v)", want, rep.State)
	}
	waitState(Healthy)
	killed.Store("x", true)
	waitState(Dead)
	killed.Delete("x")
	waitState(Healthy)
}

// TestNextDelayJitterBounds: every drawn delay stays inside the
// documented [1-j, 1+j]×interval band for routable targets.
func TestNextDelayJitterBounds(t *testing.T) {
	p, _ := newScripted(t, []string{"a"}, Options{Interval: 100 * time.Millisecond, Jitter: 0.2})
	rng := rand.New(rand.NewSource(7))
	lo := time.Duration(float64(100*time.Millisecond) * 0.8)
	hi := time.Duration(float64(100*time.Millisecond) * 1.2)
	for i := 0; i < 1000; i++ {
		d := p.nextDelay(0, rng)
		if d < lo || d > hi {
			t.Fatalf("delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

// TestDeadBackoffCapped: a long-dead target's probe period stretches
// but never past MaxBackoff (plus jitter).
func TestDeadBackoffCapped(t *testing.T) {
	p, sp := newScripted(t, []string{"a"}, Options{
		Interval:   10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		Jitter:     0.1,
	})
	sp.set("a", true)
	for i := 0; i < 20; i++ {
		p.ProbeNow(context.Background())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if d := p.nextDelay(0, rng); d > 44*time.Millisecond {
			t.Fatalf("dead-target delay %v exceeds jittered MaxBackoff", d)
		}
	}
}

// TestOptionValidation: malformed knobs are typed errors, never panics.
func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{}, // no targets
		{Targets: []string{"a"}, Interval: -1},
		{Targets: []string{"a"}, Jitter: 1.5},
		{Targets: []string{"a"}, Jitter: -0.1},
		{Targets: []string{"a"}, Timeout: -1},
		{Targets: []string{"a"}, SuspectAfter: -1},
		{Targets: []string{"a"}, SuspectAfter: 5, DeadAfter: 2},
		{Targets: []string{"a"}, MaxBackoff: -1},
	}
	for i, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("case %d: New(%+v) accepted invalid options", i, opts)
		}
	}
}

// TestStopIdempotentAndUnstarted.
func TestStopIdempotentAndUnstarted(t *testing.T) {
	p, _ := newScripted(t, []string{"a"}, Options{})
	p.Stop() // never started: trivially fine
	p2, _ := newScripted(t, []string{"a"}, Options{Interval: time.Millisecond})
	p2.Start()
	p2.Start() // idempotent
	p2.Stop()
	p2.Stop()
}

// TestReadyzOK pins the readiness parser's accept/reject behavior.
func TestReadyzOK(t *testing.T) {
	cases := []struct {
		status int
		body   string
		ok     bool
	}{
		{200, `{"status":"ready"}`, true},
		{200, `{"status":"draining"}`, false},
		{503, `{"status":"draining"}`, false},
		{200, `{"status":"READY"}`, false},
		{200, `not json`, false},
		{200, ``, false},
		{200, `null`, false},
		{200, `{"status":42}`, false},
		{204, `{"status":"ready"}`, false},
	}
	for _, tc := range cases {
		err := ReadyzOK(tc.status, []byte(tc.body))
		if (err == nil) != tc.ok {
			t.Errorf("ReadyzOK(%d, %q) = %v, want ok=%v", tc.status, tc.body, err, tc.ok)
		}
	}
}

// TestReplicaSetJSONRoundTrip: states marshal as names and round-trip.
func TestReplicaSetJSONRoundTrip(t *testing.T) {
	rs := ReplicaSet{Version: 7, Replicas: []Replica{
		{URL: "http://a", State: Healthy},
		{URL: "http://b", State: Dead, ConsecutiveFailures: 5, LastError: "x"},
		{URL: "http://c", State: Recovering, ConsecutiveSuccesses: 1},
	}}
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	var got ReplicaSet
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for i := range rs.Replicas {
		if got.Replicas[i] != rs.Replicas[i] {
			t.Fatalf("round-trip changed replica %d: %+v vs %+v", i, got.Replicas[i], rs.Replicas[i])
		}
	}
	var bad State
	if err := json.Unmarshal([]byte(`"zombie"`), &bad); err == nil {
		t.Fatal("unknown state name unmarshaled without error")
	}
}

// FuzzReadyzParse: the readiness body parser never panics on hostile
// bytes — the "malformed replica-state JSON" contract.
func FuzzReadyzParse(f *testing.F) {
	seeds := []string{
		`{"status":"ready"}`, `{"status":"draining"}`, `{"status":""}`,
		`{"status":null}`, `{"status":{}}`, `{}`, `[]`, `null`, ``, `{`,
		`{"status":"ready","extra":1}`, "\xff\xfe{not json", `{"status":"ready"} trailing`,
	}
	for _, s := range seeds {
		f.Add(200, []byte(s))
	}
	f.Add(503, []byte(`{"status":"draining"}`))
	f.Add(0, []byte(``))
	f.Fuzz(func(t *testing.T, status int, body []byte) {
		_ = ReadyzOK(status, body) // must not panic
	})
}

// FuzzReplicaStateJSON: ReplicaSet unmarshaling never panics and
// unknown state names always error.
func FuzzReplicaStateJSON(f *testing.F) {
	seeds := []string{
		`{"version":1,"replicas":[{"url":"http://a","state":"healthy"}]}`,
		`{"version":1,"replicas":[{"url":"http://a","state":"zombie"}]}`,
		`{"replicas":[{"state":"dead","consecutive_failures":-1}]}`,
		`{"replicas":null}`, `{}`, `[]`, `null`, `{"version":"x"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var rs ReplicaSet
		if err := json.Unmarshal(body, &rs); err != nil {
			return
		}
		for _, rep := range rs.Replicas {
			if rep.State < Healthy || rep.State > Recovering {
				t.Fatalf("unmarshal admitted out-of-range state %d", rep.State)
			}
		}
	})
}
