package perfcounter

import (
	"math"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/trace"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

func epDemand(t *testing.T) trace.Demand {
	t.Helper()
	s, err := workloads.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	return s.Demand
}

func TestCampaignValidate(t *testing.T) {
	good := Campaign{
		Spec:        hwsim.ARMCortexA9(),
		Demand:      epDemand(t),
		Units:       1e5,
		Repetitions: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Campaign)
	}{
		{"zero units", func(c *Campaign) { c.Units = 0 }},
		{"zero reps", func(c *Campaign) { c.Repetitions = 0 }},
		{"negative sigma", func(c *Campaign) { c.NoiseSigma = -1 }},
		{"bad config", func(c *Campaign) {
			c.Configs = []hwsim.Config{{Cores: 99, Frequency: 1.4 * units.GHz}}
		}},
		{"bad spec", func(c *Campaign) { c.Spec.Cores = 0 }},
		{"bad demand", func(c *Campaign) { c.Demand = trace.Demand{} }},
	}
	for _, tc := range cases {
		c := good
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestCollectCoversAllConfigs(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	c := Campaign{
		Spec:        arm,
		Demand:      epDemand(t),
		Units:       1e4,
		Repetitions: 2,
		NoiseSigma:  0.02,
		Seed:        1,
	}
	tr, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := arm.ConfigCount() * 2
	if len(tr.Records) != want {
		t.Fatalf("collected %d records, want %d", len(tr.Records), want)
	}
	seen := map[hwsim.Config]int{}
	for _, r := range tr.Records {
		seen[hwsim.Config{Cores: r.Cores, Frequency: r.Frequency}]++
		if r.Workload != "ep" || r.Node != arm.Name {
			t.Errorf("record identity wrong: %s/%s", r.Workload, r.Node)
		}
	}
	for cfg, n := range seen {
		if n != 2 {
			t.Errorf("config %+v has %d records, want 2", cfg, n)
		}
	}
}

func TestCollectRestrictedConfigs(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	cfgs := []hwsim.Config{
		{Cores: 1, Frequency: 1.4 * units.GHz},
		{Cores: 4, Frequency: 1.4 * units.GHz},
	}
	c := Campaign{
		Spec: arm, Demand: epDemand(t), Units: 1e4,
		Repetitions: 1, Configs: cfgs,
	}
	tr, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("collected %d records, want 2", len(tr.Records))
	}
}

func TestCollectReproducible(t *testing.T) {
	c := Campaign{
		Spec: hwsim.ARMCortexA9(), Demand: epDemand(t), Units: 1e4,
		Repetitions: 1, NoiseSigma: 0.03, Seed: 42,
		Configs: []hwsim.Config{{Cores: 4, Frequency: 1.4 * units.GHz}},
	}
	t1, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if t1.Records[0] != t2.Records[0] {
		t.Error("same campaign should reproduce identical traces")
	}
}

func TestCollectAcrossSizes(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	cfg := hwsim.Config{Cores: 4, Frequency: 1.4 * units.GHz}
	sizes := []float64{1e4, 1e5, 1e6}
	tr, err := CollectAcrossSizes(arm, cfg, epDemand(t), sizes, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("got %d records", len(tr.Records))
	}
	for i, r := range tr.Records {
		if r.WorkUnits != sizes[i] {
			t.Errorf("record %d units = %v, want %v", i, r.WorkUnits, sizes[i])
		}
	}
	if _, err := CollectAcrossSizes(arm, cfg, epDemand(t), nil, 0, 0); err == nil {
		t.Error("empty size list should error")
	}
}

func TestMeasureIdle(t *testing.T) {
	arm := hwsim.ARMCortexA9()
	ideal, err := MeasureIdle(arm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ideal != float64(arm.IdlePower()) {
		t.Errorf("noiseless idle = %v, want %v", ideal, arm.IdlePower())
	}
	noisy, err := MeasureIdle(arm, 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(noisy-ideal) / ideal
	if rel > 0.1 {
		t.Errorf("idle measurement noise too large: %v", rel)
	}
	again, err := MeasureIdle(arm, 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	if noisy != again {
		t.Error("same seed should reproduce the same reading")
	}
	bad := arm
	bad.Cores = 0
	if _, err := MeasureIdle(bad, 0, 0); err == nil {
		t.Error("bad spec should error")
	}
}

func TestMeterNoiseBounded(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		f := meterNoise(0.03, seed)
		if f < 0.9 || f > 1.1 {
			t.Errorf("seed %d: noise factor %v outside clamp", seed, f)
		}
	}
	if meterNoise(0, 1) != 1 {
		t.Error("zero sigma should give exact reading")
	}
}
