// Package perfcounter orchestrates baseline measurement campaigns, the
// reproduction's equivalent of the paper's §II-D/§III-A procedure: run a
// representative batch of each workload on a single node of each type,
// across combinations of active cores and core clock frequency, with
// hardware event counters and the power meter attached, and collect the
// observations into a trace.Trace for the model-fitting stage
// (internal/profile).
//
// The authors used `perf` for counters and a Yokogawa WT210 for power;
// here each observation is an internal/hwsim run. Repetitions with
// different seeds capture the run-to-run irregularity the paper names as
// its main source of model error.
package perfcounter

import (
	"fmt"

	"heteromix/internal/hwsim"
	"heteromix/internal/trace"
)

// Campaign describes one measurement campaign: a workload demand measured
// on one node type over a set of configurations.
type Campaign struct {
	// Spec is the node type under measurement.
	Spec hwsim.NodeSpec
	// Demand is the workload's representative phase.
	Demand trace.Demand
	// Units is the batch size of each observation (multiples of Ps).
	Units float64
	// Repetitions is the number of repeated runs per configuration;
	// at least 1.
	Repetitions int
	// NoiseSigma is the run-to-run variation magnitude passed to hwsim.
	NoiseSigma float64
	// Seed derives per-run seeds; campaigns with equal seeds are
	// reproducible.
	Seed int64
	// Configs restricts the campaign to specific configurations; nil
	// measures every (cores, frequency) combination, as the paper's
	// single-node validation does.
	Configs []hwsim.Config
}

// Validate checks the campaign parameters.
func (c Campaign) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if err := c.Demand.Validate(); err != nil {
		return err
	}
	if c.Units <= 0 {
		return fmt.Errorf("perfcounter: campaign batch size %v", c.Units)
	}
	if c.Repetitions < 1 {
		return fmt.Errorf("perfcounter: campaign needs >= 1 repetition, got %d", c.Repetitions)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("perfcounter: negative noise sigma %v", c.NoiseSigma)
	}
	for _, cfg := range c.Configs {
		if err := cfg.ValidateFor(c.Spec); err != nil {
			return err
		}
	}
	return nil
}

// Collect runs the campaign and returns the collected trace. Records are
// ordered by configuration then repetition.
func (c Campaign) Collect() (*trace.Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	configs := c.Configs
	if configs == nil {
		configs = hwsim.Configs(c.Spec)
	}
	tr := &trace.Trace{}
	seed := c.Seed
	for _, cfg := range configs {
		for rep := 0; rep < c.Repetitions; rep++ {
			seed++
			m, err := hwsim.Run(c.Spec, cfg, c.Demand, c.Units, hwsim.Options{
				Seed:       seed,
				NoiseSigma: c.NoiseSigma,
			})
			if err != nil {
				return nil, fmt.Errorf("perfcounter: config %+v rep %d: %w", cfg, rep, err)
			}
			if err := tr.Append(m.Record); err != nil {
				return nil, fmt.Errorf("perfcounter: config %+v rep %d: %w", cfg, rep, err)
			}
		}
	}
	return tr, nil
}

// CollectAcrossSizes measures the workload at several problem sizes on a
// single configuration — the experiment behind Figure 2, which shows WPI
// and SPIcore constant as the problem scales from class A to C.
func CollectAcrossSizes(spec hwsim.NodeSpec, cfg hwsim.Config, demand trace.Demand, sizes []float64, noiseSigma float64, seed int64) (*trace.Trace, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("perfcounter: no problem sizes given")
	}
	tr := &trace.Trace{}
	for i, w := range sizes {
		m, err := hwsim.Run(spec, cfg, demand, w, hwsim.Options{
			Seed:       seed + int64(i),
			NoiseSigma: noiseSigma,
		})
		if err != nil {
			return nil, fmt.Errorf("perfcounter: size %v: %w", w, err)
		}
		if err := tr.Append(m.Record); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// MeasureIdle reports the node's idle power as a power-meter reading with
// measurement noise, the paper's "Pidle is measured without any workload".
func MeasureIdle(spec hwsim.NodeSpec, noiseSigma float64, seed int64) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	// Reuse the hwsim noise model by running a negligible workload? No:
	// idle needs no workload. Apply meter noise directly.
	return float64(spec.IdlePower()) * meterNoise(noiseSigma, seed), nil
}

// meterNoise returns a deterministic multiplicative reading error for the
// given seed, matching hwsim's clamped-Gaussian convention.
func meterNoise(sigma float64, seed int64) float64 {
	if sigma <= 0 {
		return 1
	}
	// A tiny xorshift keeps this free of package-level state.
	x := uint64(seed)*2654435761 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	// Map two uniform draws to an approximate Gaussian via sum of 4
	// uniforms (Irwin-Hall), good enough for meter noise.
	sum := 0.0
	for i := 0; i < 4; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		sum += float64(x%1000) / 1000
	}
	n := (sum - 2) * 1.73 // approx unit variance
	if n > 3 {
		n = 3
	}
	if n < -3 {
		n = -3
	}
	return 1 + sigma*n
}
