package server

// Fleet mode: scatter-gather enumeration and consistent-hash routing
// across a replica set.
//
// A coordinator receives /v1/enumerate-generic with shards: n, rewrites
// it into n shard requests ("shard": "i/n"), fans them out across its
// replica URLs through the retrying client and per-replica circuit
// breakers, and merges the partial frontiers deterministically
// (cluster.MergeShardFrontiers), so the merged body is byte-identical
// to what an unsharded walk of the same space would have served — and
// is cached under the unsharded request's key, letting fleet and
// single-process traffic share one entry.
//
// Self-healing: each shard is assigned along the consistent-hash ring's
// successor walk (shard.Ring.Successors), filtered by the health
// prober's snapshot, so a shard owned by a dead replica is reassigned
// to the next healthy one before a byte is sent. A shard request that
// fails outright fails over to its next candidate immediately; one that
// is merely slow gets a hedge — a duplicate sent to the next candidate
// after the observed latency quantile elapses — and the first success
// wins while the loser is cancelled. Sub-requests carry the
// coordinator's remaining budget as X-Deadline-Ms so replicas shed work
// whose answer would arrive too late. Only when a shard exhausts its
// candidates does it count as failed: the merge of the surviving slices
// is served marked degraded with the failed shard indices listed, and
// is never cached; when every shard fails the request answers 503,
// never 500.
//
// Routing: with a RouteKey configured, predict and single-workload
// batch requests are forwarded to the consistent-hash owner of their
// workload, so each replica's compiled-table cache stays hot for the
// clusters it owns. Forwarded requests carry X-Heteromix-Routed; a
// request already carrying it is always served locally, which bounds
// every request to at most one hop. A forward that fails (network,
// 5xx, open breaker) falls back to local compute.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"heteromix/internal/cluster"
	"heteromix/internal/fleethealth"
	"heteromix/internal/pareto"
	"heteromix/internal/resilience"
	"heteromix/internal/shard"
)

const (
	// maxFleetShards bounds a coordinator fan-out; more shards than this
	// is a client error, not a bigger fleet.
	maxFleetShards = 64
	// maxFleetReplicas bounds the replica set, configured or per-request.
	maxFleetReplicas = 16
	// maxFleetBody bounds one replica response read.
	maxFleetBody = 64 << 20
	// routedHeader marks a request as already routed/fanned-out once;
	// servers never forward a request that carries it.
	routedHeader = "X-Heteromix-Routed"
	// deadlineHeader propagates a coordinator's remaining time budget to
	// replicas, in integer milliseconds. Replicas cap their per-request
	// timeout at it so they stop computing answers the coordinator has
	// already given up on.
	deadlineHeader = "X-Deadline-Ms"
	// maxDeadlineMs bounds an accepted propagated deadline (one hour);
	// larger values are a client error.
	maxDeadlineMs = 3_600_000
	// maxShardAttempts bounds how many replicas one shard may be tried
	// on in a single fan-out: the ring owner plus one failover/hedge.
	maxShardAttempts = 2
)

// errFleetUnavailable marks a fan-out in which every shard failed; it
// maps to 503 like an open breaker, never 500.
var errFleetUnavailable = errors.New("fleet unavailable")

// errFleetPartial carries a degraded partial-merge body out of the
// cache's compute path as an error, so the body serves this once but is
// never cached — exactly the errors-are-never-cached rule everywhere
// else in the server.
type errFleetPartial struct{ body []byte }

func (e errFleetPartial) Error() string { return "fleet: partial result" }

// validReplicaURL admits http(s) base URLs with a host and no path, the
// only shapes the fan-out and router will join endpoints onto.
func validReplicaURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("invalid URL %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("replica URL must be http(s)://host[:port], got %q", raw)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return fmt.Errorf("replica URL must be a bare base URL, got %q", raw)
	}
	return nil
}

// fleetClient is the coordinator's transport: a retrying HTTP client
// shared across replicas plus one circuit breaker per replica URL, so a
// dead replica fails its shards fast instead of eating the retry budget
// on every fan-out.
type fleetClient struct {
	c          *resilience.Client
	newBreaker func(target string) *resilience.Breaker

	mu       sync.Mutex
	breakers map[string]*resilience.Breaker
}

func newFleetClient(newBreaker func(target string) *resilience.Breaker) *fleetClient {
	return &fleetClient{
		c: resilience.NewClient(nil, resilience.RetryOptions{
			MaxAttempts: 2,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		}),
		newBreaker: newBreaker,
		breakers:   map[string]*resilience.Breaker{},
	}
}

// breakerFor returns the breaker guarding one replica URL, creating it
// on first sight.
func (f *fleetClient) breakerFor(target string) *resilience.Breaker {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.breakers[target]
	if !ok {
		b = f.newBreaker(target)
		f.breakers[target] = b
	}
	return b
}

// post sends body to target's endpoint through the retry client, with
// the routed marker set. When ctx carries a deadline, the remaining
// budget minus a 10% gather margin is stamped on the sub-request as
// X-Deadline-Ms, so the replica sheds work the coordinator could no
// longer merge; an already-exhausted budget fails fast without a wire
// round trip. The response body is fully read and returned with the
// status.
func (f *fleetClient) post(ctx context.Context, target, endpoint string, body []byte) (int, []byte, error) {
	u := strings.TrimSuffix(target, "/") + endpoint
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(routedHeader, "1")
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl)
		budget -= budget / 10
		if budget < time.Millisecond {
			return 0, nil, fmt.Errorf("deadline exhausted: %w", context.DeadlineExceeded)
		}
		hreq.Header.Set(deadlineHeader, strconv.FormatInt(budget.Milliseconds(), 10))
	}
	resp, err := f.c.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxFleetBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// shardCandidates builds each shard's ordered replica walk: the
// consistent-hash owner first, then the next distinct ring members —
// filtered by the health snapshot so dead replicas are skipped before a
// byte is sent — capped at maxShardAttempts. A request-override replica
// set gets an ad hoc ring and no health filtering (the prober does not
// track it). A shard whose every candidate is unroutable gets an empty
// walk and fails without a wire attempt, which is exactly the
// failed_shards partial path.
func (s *Server) shardCandidates(req EnumerateGenericRequest) [][]string {
	ring := s.shardRing
	var snap *fleethealth.ReplicaSet
	if len(req.Replicas) > 0 {
		ring = shard.NewRing(req.Replicas, 0)
	} else if s.health != nil {
		snap = s.health.Snapshot()
	}
	cands := make([][]string, req.Shards)
	for i := range cands {
		for _, t := range ring.Successors("shard:" + strconv.Itoa(i)) {
			if snap != nil && !snap.Routable(t) {
				continue
			}
			cands[i] = append(cands[i], t)
			if len(cands[i]) == maxShardAttempts {
				break
			}
		}
	}
	return cands
}

// fanOutGeneric scatters req.Shards shard requests across the replica
// set — each shard walking its candidate replicas with failover and
// hedging — and gathers the partial frontiers. It returns the
// deterministic merge of the slices that answered, the indices of
// shards that failed, and whether any surviving slice was itself served
// degraded. onShard, when non-nil, is invoked from each shard's
// goroutine as its outcome settles (streamed coordinators emit progress
// records from it — the callback must serialize itself); every
// callback has returned before fanOutGeneric does.
func (s *Server) fanOutGeneric(r *http.Request, req EnumerateGenericRequest, onShard func(i, points int, err error)) (merged cluster.ShardFrontier[cluster.GenericPointSummary], failed []int, degraded bool, err error) {
	cands := s.shardCandidates(req)
	n := req.Shards
	s.fleetFanouts.Inc()
	type result struct {
		part cluster.ShardFrontier[cluster.GenericPointSummary]
		deg  bool
		err  error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part, deg, err := s.shardRequestHedged(r.Context(), cands[i], req, i, n)
			results[i] = result{part: part, deg: deg, err: err}
			if onShard != nil {
				onShard(i, len(part.Points), err)
			}
		}(i)
	}
	wg.Wait()
	parts := make([]cluster.ShardFrontier[cluster.GenericPointSummary], 0, n)
	for i, res := range results {
		if res.err != nil {
			s.fleetShardErrors.Inc()
			failed = append(failed, i)
			continue
		}
		degraded = degraded || res.deg
		parts = append(parts, res.part)
	}
	if len(parts) == 0 {
		return merged, failed, false, fmt.Errorf("%w: all %d shards failed", errFleetUnavailable, n)
	}
	merged, err = cluster.MergeShardFrontiers(parts)
	if err != nil {
		return merged, failed, false, err
	}
	return merged, failed, degraded, nil
}

// hedgeDelay is how long the coordinator waits on a shard's primary
// before sending a hedge to the next candidate: the configured quantile
// of observed successful shard latencies, clamped to [2ms,
// RequestTimeout/4]. Before any latency has been observed it falls back
// to a flat 50ms — conservative enough that a warm fleet rarely hedges
// by accident, fast enough that a stuck replica costs one beat, not the
// whole request timeout.
func (s *Server) hedgeDelay() time.Duration {
	const coldStart = 50 * time.Millisecond
	if s.fleetShardLatency.Count() == 0 {
		return coldStart
	}
	d := time.Duration(s.fleetShardLatency.Quantile(s.opts.HedgeQuantile) * float64(time.Second))
	if d < 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	if lim := s.opts.RequestTimeout / 4; d > lim {
		d = lim
	}
	return d
}

// shardRequestHedged resolves one shard against its candidate walk.
// The primary (the shard's ring owner) is asked first; a failure before
// any other outcome triggers immediate failover to the next candidate,
// and a primary still unanswered after hedgeDelay gets a hedge sent to
// that same next candidate — whichever copy succeeds first wins and the
// loser's context is cancelled (a neutral outcome for its breaker).
// The results channel is buffered to the attempt count so an abandoned
// loser never blocks on send and no goroutine outlives its HTTP call.
func (s *Server) shardRequestHedged(ctx context.Context, cands []string, req EnumerateGenericRequest, i, n int) (cluster.ShardFrontier[cluster.GenericPointSummary], bool, error) {
	var zero cluster.ShardFrontier[cluster.GenericPointSummary]
	if len(cands) == 0 {
		return zero, false, fmt.Errorf("shard %d/%d: no routable replica", i, n)
	}
	type outcome struct {
		part   cluster.ShardFrontier[cluster.GenericPointSummary]
		deg    bool
		err    error
		hedged bool
	}
	results := make(chan outcome, len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func(target string, hedged bool) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			start := time.Now()
			part, deg, err := s.shardRequest(actx, target, req, i, n)
			if err == nil {
				s.fleetShardLatency.Observe(time.Since(start).Seconds())
			}
			results <- outcome{part: part, deg: deg, err: err, hedged: hedged}
		}()
	}
	launch(cands[0], false)
	launched := 1
	var hedgeC <-chan time.Time
	if len(cands) > 1 && !s.opts.DisableHedge {
		t := time.NewTimer(s.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for got := 0; got < launched; {
		select {
		case <-hedgeC:
			hedgeC = nil
			s.fleetHedges.Inc()
			launch(cands[launched], true)
			launched++
		case o := <-results:
			got++
			if o.err == nil {
				if o.hedged {
					s.fleetHedgeWins.Inc()
				}
				return o.part, o.deg, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launched < len(cands) {
				// The attempt failed outright before the hedge fired: fail
				// over to the next candidate immediately instead of waiting
				// out the hedge delay.
				hedgeC = nil
				s.fleetFailovers.Inc()
				launch(cands[launched], false)
				launched++
			}
		}
	}
	return zero, false, firstErr
}

// shardRequest asks one replica for slice i/n of req's space, through
// that replica's breaker, and converts the answer into a mergeable
// partial frontier.
func (s *Server) shardRequest(ctx context.Context, target string, req EnumerateGenericRequest, i, n int) (part cluster.ShardFrontier[cluster.GenericPointSummary], degraded bool, err error) {
	sub := req
	sub.Shards = 0
	sub.Replicas = nil
	// Shard sub-requests are buffered exchanges regardless of how the
	// coordinator's own response is framed.
	sub.Delta = false
	sub.Shard = shard.Shard{Index: i, Count: n}.String()
	// Pin the shard to the coordinator's active profile version: a
	// replica that has drifted (bumped or lagging) answers 409 and its
	// slice counts as failed, so the merge can never mix slices computed
	// under different profiles.
	sub.ProfileVersion = s.calib.Version(req.Workload)
	body, err := json.Marshal(sub)
	if err != nil {
		return part, false, err
	}
	berr := s.fleet.breakerFor(target).Do(func() error {
		status, b, err := s.fleet.post(ctx, target, "/v1/enumerate-generic", body)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("shard %s: %s answered %d", sub.Shard, target, status)
		}
		var er EnumerateGenericResponse
		if err := json.Unmarshal(b, &er); err != nil {
			return fmt.Errorf("shard %s: %s: %v", sub.Shard, target, err)
		}
		// A replica that disagrees on the slice or answers ragged arrays
		// would corrupt the merge; treat it as a failed shard.
		if er.Shard != sub.Shard || len(er.Points) != len(er.Indices) {
			return fmt.Errorf("shard %s: %s answered shard %q with %d points, %d indices",
				sub.Shard, target, er.Shard, len(er.Points), len(er.Indices))
		}
		part.Points = er.Points
		part.Indices = er.Indices
		part.TEs = summariesToTEs(er.Points)
		degraded = er.Degraded
		return nil
	})
	if berr != nil {
		return cluster.ShardFrontier[cluster.GenericPointSummary]{}, false, berr
	}
	return part, degraded, nil
}

// fleetGenericBytes is the coordinator's analogue of genericBytes: the
// fan-out runs under the UNSHARDED request's cache key, so a merged
// fleet result serves later unsharded traffic (and vice versa), and
// degraded partial merges ride the error path out of the cache so they
// are never stored.
func (s *Server) fleetGenericBytes(r *http.Request, req EnumerateGenericRequest, plan genericPlan) (body []byte, cached, degraded bool, failedBody []byte, err error) {
	base := req
	base.Shard = ""
	base.Shards = 0
	base.Replicas = nil
	base.ProfileVersion = 0
	key, keyed := s.versionedKey("enumerate-generic", base.Workload, base)
	ctx := r.Context()
	v, cached, stale, err := s.doFresh(key, keyed, func() (any, error) {
		merged, failedShards, partDegraded, err := s.fanOutGeneric(r, req, nil)
		if err != nil {
			return nil, err
		}
		resp := EnumerateGenericResponse{
			Workload:     req.Workload,
			Work:         req.Work,
			TypeNames:    plan.names,
			SpaceSize:    plan.spaceSize,
			PrunedSize:   plan.prunedSize,
			FrontierOnly: req.FrontierOnly,
			Points:       merged.Points,
			Returned:     len(merged.Points),
		}
		if plan.prunedSize > 0 {
			s.genericPruned.Add(plan.spaceSize - plan.prunedSize)
		}
		if len(failedShards) > 0 || partDegraded {
			resp.FailedShards = failedShards
			b, err := encodeGenericResponse(ctx, &resp)
			if err != nil {
				return nil, err
			}
			return nil, errFleetPartial{body: b}
		}
		return encodeGenericResponse(ctx, &resp)
	})
	if stale {
		s.degraded.Inc()
		return v.([]byte), false, true, nil, nil
	}
	var fp errFleetPartial
	if errors.As(err, &fp) {
		s.degraded.Inc()
		return nil, false, true, fp.body, nil
	}
	if err != nil {
		return nil, false, false, nil, err
	}
	return v.([]byte), cached, false, nil, nil
}

// handleFleetGeneric serves a coordinator request end to end.
func (s *Server) handleFleetGeneric(w http.ResponseWriter, r *http.Request, req EnumerateGenericRequest, plan genericPlan) {
	body, cached, degraded, failedBody, err := s.fleetGenericBytes(r, req, plan)
	w.Header().Set("X-Fleet-Shards", strconv.Itoa(req.Shards))
	if err != nil {
		replyError(w, r, err)
		return
	}
	if degraded {
		w.Header().Set("X-Degraded", "true")
		if failedBody != nil {
			// A live partial merge: failed_shards is already in the body.
			s.writeBody(w, r, markDegraded(failedBody), false)
			return
		}
		// A stale cached full merge served because this fan-out failed.
		s.writeBody(w, r, markDegraded(body), false)
		return
	}
	s.writeBody(w, r, body, cached)
}

// --- consistent-hash routing -----------------------------------------

// routeKeyPredict derives the routing key for a canonicalized predict
// request under the configured RouteKey mode.
func (s *Server) routeKeyPredict(req PredictRequest) string {
	if s.opts.RouteKey == "cluster" {
		return req.Workload + "|" + strconv.FormatBool(req.NoSwitchEnergy)
	}
	return req.Workload
}

// batchWorkload peeks the single workload a batch addresses, when there
// is one: every item must name the same non-empty workload for the
// batch to be routable as a unit.
func batchWorkload(items []BatchItem) (string, bool) {
	wl := ""
	for _, it := range items {
		var peek struct {
			Workload string `json:"workload"`
		}
		if json.Unmarshal(it.Request, &peek) != nil || peek.Workload == "" {
			return "", false
		}
		if wl == "" {
			wl = peek.Workload
		} else if peek.Workload != wl {
			return "", false
		}
	}
	return wl, wl != ""
}

// routeForward forwards a request to the consistent-hash owner of key
// and relays the answer. A dead owner is skipped before a byte is sent:
// the walk continues along the ring to the first routable successor,
// the same deterministic order shard failover uses. It returns false —
// caller computes locally — when routing is off, the request was
// already routed once, no replica is routable, or the forward fails
// (counted as a fallback; the owner's breaker absorbs repeated
// failures).
func (s *Server) routeForward(w http.ResponseWriter, r *http.Request, endpoint, key string, req any) bool {
	if s.ring == nil || r.Header.Get(routedHeader) != "" {
		return false
	}
	var snap *fleethealth.ReplicaSet
	if s.health != nil {
		snap = s.health.Snapshot()
	}
	target := ""
	for _, t := range s.ring.Successors(key) {
		if snap == nil || snap.Routable(t) {
			target = t
			break
		}
	}
	if target == "" {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	var status int
	var respBody []byte
	berr := s.fleet.breakerFor(target).Do(func() error {
		st, b, err := s.fleet.post(r.Context(), target, endpoint, body)
		if err != nil {
			return err
		}
		if st >= 500 {
			return fmt.Errorf("%s answered %d", target, st)
		}
		status, respBody = st, b
		return nil
	})
	if berr != nil {
		s.routeFallbacks.Inc()
		return false
	}
	s.routedReqs.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Routed-To", target)
	w.WriteHeader(status)
	w.Write(respBody)
	return true
}

// summariesToTEs lifts point summaries to frontier TEs for the merge.
// JSON round-trips float64 exactly, so these are bit-equal to the
// replica's own frontier coordinates.
func summariesToTEs(pts []cluster.GenericPointSummary) []pareto.TE {
	tes := make([]pareto.TE, len(pts))
	for i, p := range pts {
		tes[i] = pareto.TE{Time: p.TimeSeconds, Energy: p.EnergyJoules, Index: i}
	}
	return tes
}
