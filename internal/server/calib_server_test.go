package server

// The online-calibration serving tests: /v1/fit and /v1/profiles
// contracts, the end-to-end drift → refit → invalidation loop, and the
// proof that a profile bump makes every warm cache entry — results,
// compiled tables, raw batch memoizations, fleet-wide — unreachable.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"heteromix/internal/hwsim"
	"heteromix/internal/model"
)

// fitBodyScaled builds a /v1/fit body whose observations are the base
// model's predictions with time ×tScale and energy ×eScale across core
// counts and P-states — a ground-truth shift the refit can recover
// exactly for the CPU-bound EP workload.
func fitBodyScaled(t testing.TB, workload, node string, tScale, eScale float64) string {
	t.Helper()
	spec, err := hwsim.ByName(node)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := testSuite().Model(workload, spec)
	if err != nil {
		t.Fatal(err)
	}
	req := FitRequest{Workload: workload, Node: node}
	for _, cores := range []int{1, spec.Cores} {
		for _, f := range spec.Frequencies {
			pred, err := nm.Predict(hwsim.Config{Cores: cores, Frequency: f}, 0.5*1e8)
			if err != nil {
				t.Fatal(err)
			}
			req.Samples = append(req.Samples, FitSample{
				Cores:        cores,
				GHz:          f.GHzValue(),
				Work:         0.5 * 1e8,
				TimeSeconds:  float64(pred.Time) * tScale,
				EnergyJoules: float64(pred.Energy) * eScale,
			})
		}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// perturbedModel returns the pair's base model with its instruction
// count scaled — a distinct content hash, so Install always bumps.
func perturbedModel(t testing.TB, workload, node string, scale float64) model.NodeModel {
	t.Helper()
	spec, err := hwsim.ByName(node)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := testSuite().Model(workload, spec)
	if err != nil {
		t.Fatal(err)
	}
	nm.Profile.InstructionsPerUnit *= scale
	return nm
}

func TestFitAndProfilesEndpoints(t *testing.T) {
	s := newTestServer(t, Options{})

	// Accurate observations: accepted and tracked, no refit.
	rr := post(t, s, "/v1/fit", fitBodyScaled(t, "ep", "arm-cortex-a9", 1.0, 1.0))
	if rr.Code != http.StatusOK {
		t.Fatalf("fit: %d %s", rr.Code, rr.Body)
	}
	fr := decodeBody[FitResponse](t, rr)
	if fr.Accepted == 0 || fr.Refit || fr.Version != 1 {
		t.Fatalf("accurate fit: %+v", fr)
	}
	if fr.Drift > 1e-9 {
		t.Errorf("accurate fit drift = %v, want ~0", fr.Drift)
	}
	if got := s.calibSamples.Value(); got != uint64(fr.Accepted) {
		t.Errorf("calib_samples_total = %d, want %d", got, fr.Accepted)
	}
	if got := s.calibRefits.Value(); got != 0 {
		t.Errorf("calib_refits_total = %d, want 0", got)
	}
	if got := s.calibDrift.Value(); got != 0 {
		t.Errorf("calib_drift_ppm = %d, want 0", got)
	}

	pr := get(t, s, "/v1/profiles")
	if pr.Code != http.StatusOK {
		t.Fatalf("profiles: %d %s", pr.Code, pr.Body)
	}
	prof := decodeBody[ProfilesResponse](t, pr)
	if prof.Generation != 1 || prof.RefitThreshold != 0.10 {
		t.Errorf("profiles header = %+v", prof)
	}
	if len(prof.Profiles) != 1 || prof.Profiles[0].Source != "base" ||
		prof.Profiles[0].Samples != fr.Accepted || prof.Profiles[0].Version != 1 {
		t.Errorf("profiles rows = %+v", prof.Profiles)
	}

	hr := get(t, s, "/healthz")
	if !strings.Contains(hr.Body.String(), `"profile_generation":1`) {
		t.Errorf("healthz missing profile_generation: %s", hr.Body)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	s := newTestServer(t, Options{MaxFitBatch: 4})
	sample := `{"cores":1,"ghz":0.8,"time_seconds":1,"energy_joules":10}`
	cases := []struct {
		name, body string
	}{
		{"unknown workload", `{"workload":"fortran","node":"arm-cortex-a9","samples":[` + sample + `]}`},
		{"missing workload", `{"node":"arm-cortex-a9","samples":[` + sample + `]}`},
		{"unknown node", `{"workload":"ep","node":"pdp-11","samples":[` + sample + `]}`},
		{"no samples", `{"workload":"ep","node":"arm-cortex-a9","samples":[]}`},
		{"oversized batch", `{"workload":"ep","node":"arm-cortex-a9","samples":[` +
			strings.Repeat(sample+",", 4) + sample + `]}`},
		{"NaN time", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":NaN,"energy_joules":1}]}`},
		{"negative time", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":-1,"energy_joules":1}]}`},
		{"zero energy", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":1,"energy_joules":0}]}`},
		{"overflow energy", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":1,"energy_joules":1e999}]}`},
		{"bad cores", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"cores":99,"time_seconds":1,"energy_joules":1}]}`},
		{"off-P-state ghz", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"ghz":7.7,"time_seconds":1,"energy_joules":1}]}`},
		{"bad work", `{"workload":"ep","node":"arm-cortex-a9","samples":[{"work":-5,"time_seconds":1,"energy_joules":1}]}`},
		{"unknown field", `{"workload":"ep","node":"arm-cortex-a9","wibble":1,"samples":[` + sample + `]}`},
	}
	for _, tc := range cases {
		rr := post(t, s, "/v1/fit", tc.body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d %s, want 400", tc.name, rr.Code, rr.Body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: 400 without JSON error body: %s", tc.name, rr.Body)
		}
	}
	// Nothing was stored by any rejected batch.
	for _, st := range s.calib.Statuses() {
		if st.Samples != 0 {
			t.Errorf("rejected batches left %d samples stored", st.Samples)
		}
	}
}

// TestDriftRefitEndToEnd is the subsystem's acceptance loop: warm
// predictions, a ground-truth shift arriving through /v1/fit, drift
// crossing the threshold, the automatic refit bumping the profile
// version, every warm cache entry invalidated, and the post-refit
// predictions tracking the shifted truth where the pre-refit ones were
// 50% off.
func TestDriftRefitEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	const predictBody = `{"workload":"ep","arm":{"nodes":2},"no_switch_energy":true}`

	// Warm the serving path: miss, then hit.
	first := post(t, s, "/v1/predict", predictBody)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold predict: %d cache=%q", first.Code, first.Header().Get("X-Cache"))
	}
	if rr := post(t, s, "/v1/predict", predictBody); rr.Header().Get("X-Cache") != "hit" {
		t.Fatalf("warm predict not cached: %q", rr.Header().Get("X-Cache"))
	}
	base := decodeBody[PredictResponse](t, first)

	// The ground truth shifts: jobs now run 1.5x slower and use 1.3x the
	// energy. The warm prediction is 33%/23% off that truth.
	trueTime := base.Point.TimeSeconds * 1.5
	trueEnergy := base.Point.EnergyJoules * 1.3
	preErr := relDiff(base.Point.TimeSeconds, trueTime)
	if e := relDiff(base.Point.EnergyJoules, trueEnergy); e > preErr {
		preErr = e
	}

	// Observations of the shifted truth arrive. Drift (≈33%) crosses the
	// 10% threshold with enough samples stored, so this single ingest
	// refits and bumps the profile version.
	rr := post(t, s, "/v1/fit", fitBodyScaled(t, "ep", "arm-cortex-a9", 1.5, 1.3))
	if rr.Code != http.StatusOK {
		t.Fatalf("fit: %d %s", rr.Code, rr.Body)
	}
	fr := decodeBody[FitResponse](t, rr)
	if !fr.Refit || fr.Version != 2 || fr.Hash == "" || fr.Quality == nil {
		t.Fatalf("shifted fit did not refit: %+v", fr)
	}
	if fr.DriftBefore < 0.1 {
		t.Errorf("drift before = %v, expected past the 0.1 threshold", fr.DriftBefore)
	}
	if fr.Drift >= fr.DriftBefore || fr.Drift > 1e-6 {
		t.Errorf("post-refit drift = %v (before %v), want ~0", fr.Drift, fr.DriftBefore)
	}
	if got := s.calibRefits.Value(); got != 1 {
		t.Errorf("calib_refits_total = %d, want 1", got)
	}
	if got := s.calibInvalid.Value(); got == 0 {
		t.Error("calib_invalidations_total = 0, want > 0 (warm entries swept)")
	}

	// The warm entry is unreachable: the same request misses, rebuilds
	// against the refit profile, and now predicts the shifted truth.
	after := post(t, s, "/v1/predict", predictBody)
	if after.Code != http.StatusOK {
		t.Fatalf("post-refit predict: %d %s", after.Code, after.Body)
	}
	if after.Header().Get("X-Cache") != "miss" {
		t.Fatalf("post-refit predict served the stale entry: cache=%q", after.Header().Get("X-Cache"))
	}
	refit := decodeBody[PredictResponse](t, after)
	postErr := relDiff(refit.Point.TimeSeconds, trueTime)
	if e := relDiff(refit.Point.EnergyJoules, trueEnergy); e > postErr {
		postErr = e
	}
	if postErr > 1e-6 {
		t.Errorf("post-refit prediction error = %v, want ~0 (time %v vs %v, energy %v vs %v)",
			postErr, refit.Point.TimeSeconds, trueTime, refit.Point.EnergyJoules, trueEnergy)
	}
	if postErr >= preErr {
		t.Errorf("refit did not improve serving error: before %v, after %v", preErr, postErr)
	}

	// The profile is now a first-class versioned object everywhere.
	prof := decodeBody[ProfilesResponse](t, get(t, s, "/v1/profiles"))
	if prof.Generation != 2 {
		t.Errorf("generation = %d, want 2", prof.Generation)
	}
	row := prof.Profiles[0]
	if row.Source != "refit" || row.Version != 2 || row.Hash != fr.Hash || row.Refits != 1 {
		t.Errorf("profile row = %+v", row)
	}
	if !strings.Contains(get(t, s, "/healthz").Body.String(), `"profile_generation":2`) {
		t.Error("healthz generation did not advance")
	}
}

func relDiff(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}

// TestProfileBumpInvalidatesCaches pins the invalidation contract
// entry-by-entry: warm result entries and compiled tables for the
// bumped workload become unreachable (the same requests miss and
// rebuild), while another workload's entries stay warm through the
// bump.
func TestProfileBumpInvalidatesCaches(t *testing.T) {
	s := newTestServer(t, Options{})
	const (
		epPredict  = `{"workload":"ep","arm":{"nodes":2}}`
		epGeneric  = `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true}`
		memPredict = `{"workload":"memcached","arm":{"nodes":2}}`
	)
	for _, body := range []struct{ path, body string }{
		{"/v1/predict", epPredict},
		{"/v1/enumerate-generic", epGeneric},
		{"/v1/predict", memPredict},
	} {
		if rr := post(t, s, body.path, body.body); rr.Code != http.StatusOK {
			t.Fatalf("warming %s: %d %s", body.path, rr.Code, rr.Body)
		}
	}
	buildsBefore := s.TableBuilds()
	entriesBefore := s.cache.Stats().Entries

	if _, err := s.calib.Install("ep", "arm-cortex-a9", perturbedModel(t, "ep", "arm-cortex-a9", 1.25), "test"); err != nil {
		t.Fatal(err)
	}
	if got := s.calibInvalid.Value(); got == 0 {
		t.Error("bump swept nothing")
	}
	if got := s.cache.Stats().Entries; got >= entriesBefore {
		t.Errorf("result cache entries %d -> %d, want fewer after the sweep", entriesBefore, got)
	}

	// ep entries: miss and rebuild (tables too).
	if rr := post(t, s, "/v1/predict", epPredict); rr.Header().Get("X-Cache") != "miss" {
		t.Errorf("ep predict after bump: cache=%q, want miss", rr.Header().Get("X-Cache"))
	}
	if rr := post(t, s, "/v1/enumerate-generic", epGeneric); rr.Header().Get("X-Cache") != "miss" {
		t.Errorf("ep generic after bump: cache=%q, want miss", rr.Header().Get("X-Cache"))
	}
	if got := s.TableBuilds(); got <= buildsBefore {
		t.Errorf("kernel tables were not rebuilt after the bump: %d -> %d", buildsBefore, got)
	}
	// The other workload's entry survived and still serves hot.
	if rr := post(t, s, "/v1/predict", memPredict); rr.Header().Get("X-Cache") != "hit" {
		t.Errorf("memcached predict after ep bump: cache=%q, want hit", rr.Header().Get("X-Cache"))
	}
}

// TestBatchRawMemoizationRetiredOnBump: raw batch-item entries carry
// the global profile generation, so a bump of ANY workload retires them
// wholesale — the coarse tier for keys that cannot see a workload
// without decoding.
func TestBatchRawMemoizationRetiredOnBump(t *testing.T) {
	s := newTestServer(t, Options{})
	const batchBody = `{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":2}}}]}`
	type batchEnvelope struct {
		Items []struct {
			Status int  `json:"status"`
			Cached bool `json:"cached"`
		} `json:"items"`
	}
	post(t, s, "/v1/batch", batchBody)
	warm := decodeBody[batchEnvelope](t, post(t, s, "/v1/batch", batchBody))
	if len(warm.Items) != 1 || !warm.Items[0].Cached {
		t.Fatalf("warm batch item not memoized: %+v", warm)
	}

	if _, err := s.calib.Install("ep", "arm-cortex-a9", perturbedModel(t, "ep", "arm-cortex-a9", 1.1), "test"); err != nil {
		t.Fatal(err)
	}
	cold := decodeBody[batchEnvelope](t, post(t, s, "/v1/batch", batchBody))
	if len(cold.Items) != 1 || cold.Items[0].Cached {
		t.Fatalf("batch item served a pre-bump memoization: %+v", cold)
	}
	if cold.Items[0].Status != http.StatusOK {
		t.Fatalf("post-bump batch item: %+v", cold)
	}
}

// TestFleetProfileVersionConflict: the coordinator stamps its profile
// version onto every shard sub-request; a replica at a different
// version answers 409 (retryable, never 5xx), its slice counts as
// failed, and a fleet whose replicas all disagree answers 503. Once the
// replicas converge on the coordinator's profile, the same fan-out
// serves again.
func TestFleetProfileVersionConflict(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	shardedBody := `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2},{"node":"amd-opteron-k10","max_nodes":2}],"frontier_only":true,"shards":2}`

	// Converged fleet serves.
	if rr := post(t, f.coord, "/v1/enumerate-generic", shardedBody); rr.Code != http.StatusOK {
		t.Fatalf("converged fleet: %d %s", rr.Code, rr.Body)
	}

	// A direct pinned request against the wrong version is a 409 with a
	// JSON error body.
	pinned := `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"profile_version":99}`
	rr := post(t, f.replicas[0], "/v1/enumerate-generic", pinned)
	if rr.Code != http.StatusConflict {
		t.Fatalf("pinned mismatch: %d %s, want 409", rr.Code, rr.Body)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "profile version conflict") {
		t.Fatalf("409 body: %s", rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("409 without Retry-After")
	}

	// The coordinator bumps (ep -> v2); the replicas still serve v1. Every
	// stamped shard now conflicts, so the whole fan-out is unavailable —
	// never a silent merge of mixed-profile slices.
	nm := perturbedModel(t, "ep", "arm-cortex-a9", 1.25)
	if _, err := f.coord.calib.Install("ep", "arm-cortex-a9", nm, "test"); err != nil {
		t.Fatal(err)
	}
	rr = post(t, f.coord, "/v1/enumerate-generic", shardedBody)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("mixed-version fleet: %d %s, want 503", rr.Code, rr.Body)
	}

	// The replicas converge on the same profile (same model bytes → same
	// version and parameters); the fan-out serves again.
	for _, rep := range f.replicas {
		if _, err := rep.calib.Install("ep", "arm-cortex-a9", nm, "test"); err != nil {
			t.Fatal(err)
		}
	}
	rr = post(t, f.coord, "/v1/enumerate-generic", shardedBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("re-converged fleet: %d %s", rr.Code, rr.Body)
	}
}
