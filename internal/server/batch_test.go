package server

// Tests for /v1/batch: the bit-identity property (a batch of N items
// answers exactly the bodies N single-endpoint calls would), the error
// contract (envelope problems 400, item problems per-item objects under
// a 200), deterministic ordering under the worker pool, and table
// sharing across a batch's items.

import (
	"encoding/json"
	"net/http"
	"testing"
)

// batchItemOut mirrors one spliced item for decoding; RawMessage keeps
// the body bytes verbatim for exact comparison.
type batchItemOut struct {
	Kind   string          `json:"kind"`
	Status int             `json:"status"`
	Cached bool            `json:"cached"`
	Body   json.RawMessage `json:"body"`
}

type batchOut struct {
	Items  []batchItemOut `json:"items"`
	Errors int            `json:"errors"`
}

func postBatch(t *testing.T, s *Server, body string) batchOut {
	t.Helper()
	rr := post(t, s, "/v1/batch", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rr.Code, rr.Body)
	}
	var out batchOut
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("batch response is not valid JSON: %v\n%s", err, rr.Body)
	}
	return out
}

// TestBatchBitIdenticalToSingles is the property test: every item body
// in a heterogeneous batch must be byte-for-byte the body the single
// endpoint answers for the same request, in request order.
func TestBatchBitIdenticalToSingles(t *testing.T) {
	s := newTestServer(t, Options{BatchWorkers: 3})
	type single struct{ kind, path, body string }
	singles := []single{
		{"predict", "/v1/predict", `{"workload":"ep","arm":{"nodes":2},"amd":{"nodes":1}}`},
		{"predict", "/v1/predict", `{"workload":"ep","arm":{"nodes":1},"work":1e6}`},
		{"queueing", "/v1/queueing", `{"arrival_rate":0.5,"service_time_seconds":1,"scv":0.5,"window_seconds":60,"per_job_joules":100,"idle_power_watts":20}`},
		{"budget", "/v1/budget", `{"workload":"ep","budget_watts":400}`},
		{"predict", "/v1/predict", `{"workload":"memcached","amd":{"nodes":3}}`},
		{"queueing", "/v1/queueing", `{"arrival_rate":2,"service_time_seconds":0.25}`},
	}
	want := make([]string, len(singles))
	for i, sg := range singles {
		rr := post(t, s, sg.path, sg.body)
		if rr.Code != http.StatusOK {
			t.Fatalf("single %d (%s) status %d: %s", i, sg.path, rr.Code, rr.Body)
		}
		want[i] = rr.Body.String()
	}

	batch := `{"items":[`
	for i, sg := range singles {
		if i > 0 {
			batch += ","
		}
		batch += `{"kind":"` + sg.kind + `","request":` + sg.body + `}`
	}
	batch += `]}`
	out := postBatch(t, s, batch)
	if len(out.Items) != len(singles) {
		t.Fatalf("batch returned %d items, want %d", len(out.Items), len(singles))
	}
	if out.Errors != 0 {
		t.Fatalf("batch reported %d errors, want 0", out.Errors)
	}
	for i, it := range out.Items {
		if it.Kind != singles[i].kind || it.Status != http.StatusOK {
			t.Errorf("item %d: kind=%q status=%d, want kind=%q status=200", i, it.Kind, it.Status, singles[i].kind)
		}
		if string(it.Body) != want[i] {
			t.Errorf("item %d body differs from single endpoint:\nbatch:  %s\nsingle: %s", i, it.Body, want[i])
		}
	}
}

// TestBatchPerItemErrors: one bad item never fails the batch; its error
// object carries the status and body the single endpoint would answer.
func TestBatchPerItemErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	badPredict := `{"workload":"nope"}`
	single := post(t, s, "/v1/predict", badPredict)
	if single.Code != http.StatusBadRequest {
		t.Fatalf("single bad predict status %d", single.Code)
	}

	out := postBatch(t, s, `{"items":[
		{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},
		{"kind":"predict","request":`+badPredict+`},
		{"kind":"transmogrify","request":{}},
		{"kind":"predict"},
		{"kind":"queueing","request":{"arrival_rate":0.5,"service_time_seconds":1}}]}`)
	if len(out.Items) != 5 {
		t.Fatalf("got %d items, want 5", len(out.Items))
	}
	if out.Errors != 3 {
		t.Errorf("errors = %d, want 3", out.Errors)
	}
	wantStatus := []int{200, 400, 400, 400, 200}
	for i, it := range out.Items {
		if it.Status != wantStatus[i] {
			t.Errorf("item %d status = %d, want %d (body %s)", i, it.Status, wantStatus[i], it.Body)
		}
	}
	if string(out.Items[1].Body) != single.Body.String() {
		t.Errorf("bad item body differs from single endpoint:\nbatch:  %s\nsingle: %s",
			out.Items[1].Body, single.Body)
	}
	var e errorResponse
	if err := json.Unmarshal(out.Items[2].Body, &e); err != nil || e.Error == "" {
		t.Errorf("unknown-kind item should carry a JSON error body, got %s", out.Items[2].Body)
	}
}

// TestBatchEnvelopeValidation: envelope-level problems are a 400 for
// the whole batch, and the size guard fires before any item runs.
func TestBatchEnvelopeValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxBatchItems: 3})
	for name, body := range map[string]string{
		"malformed":     `{"items":`,
		"unknown field": `{"items":[],"mode":"fast"}`,
		"no items":      `{"items":[]}`,
		"null items":    `{}`,
		"oversized": `{"items":[{"kind":"predict","request":{}},{"kind":"predict","request":{}},
			{"kind":"predict","request":{}},{"kind":"predict","request":{}}]}`,
	} {
		rr := post(t, s, "/v1/batch", body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body)
		}
	}
	if got := s.TableBuilds(); got != 0 {
		t.Errorf("rejected batches built %d tables, want 0", got)
	}
}

// TestBatchSharesOneTable: a cold batch of predicts over one cluster
// builds its kernel table exactly once, however many items it carries.
func TestBatchSharesOneTable(t *testing.T) {
	s := newTestServer(t, Options{BatchWorkers: 4})
	batch := `{"items":[`
	for i := 0; i < 16; i++ {
		if i > 0 {
			batch += ","
		}
		batch += `{"kind":"predict","request":{"workload":"ep","arm":{"nodes":` +
			string(rune('1'+i%4)) + `},"work":` + string(rune('1'+i/4)) + `e6}}`
	}
	batch += `]}`
	out := postBatch(t, s, batch)
	if out.Errors != 0 {
		t.Fatalf("batch errors = %d: %+v", out.Errors, out.Items)
	}
	if got := s.TableBuilds(); got != 1 {
		t.Errorf("cold 16-item batch built %d tables, want 1", got)
	}
}
