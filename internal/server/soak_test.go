package server

// Chaos soak: hammer one daemon instance with concurrent traffic while
// the chaos middleware injects latency (past the request timeout),
// errors and panics, and require the resilience properties to hold
// under load:
//
//   - the daemon never crashes — every request gets an answer, and the
//     process survives every injected panic (an escaped panic would
//     kill the test binary);
//   - panics are contained by the recovery middleware and counted;
//   - the enumerate breaker opens under the induced failures and
//     expired cache entries serve marked degraded instead of erroring;
//   - after the storm, /healthz still answers 200 ok.
//
// The whole soak is bounded well under 30s in -short mode: it stops as
// soon as every property has been observed (typically ~1-2s).

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromix/internal/resilience"
)

func TestChaosSoakDaemonSurvives(t *testing.T) {
	s := newTestServer(t, Options{
		MaxConcurrent:  16,
		RequestTimeout: 30 * time.Millisecond,
		CacheTTL:       2 * time.Millisecond,
		// Latency injection outlasts the request timeout, so an injected
		// delay on an enumerate recompute fails it (and, with an expired
		// entry behind it, exercises the degraded stale path).
		Chaos: resilience.ChaosOptions{
			LatencyProb: 0.5, Latency: 45 * time.Millisecond,
			ErrorProb: 0.1, PanicProb: 0.1, Seed: 7,
		},
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	})

	// Seed the enumerate entry so the degraded path has something stale
	// to fall back on, and the predict/table caches are warm.
	const enumBody = `{"workload":"ep","max_arm":3,"max_amd":2}`
	for {
		rr := post(t, s, "/v1/enumerate", enumBody)
		if rr.Code == http.StatusOK {
			break
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	if testing.Short() {
		deadline = time.Now().Add(10 * time.Second)
	}
	var (
		answered  atomic.Int64
		badStatus atomic.Int64
		stop      atomic.Bool
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				var rr interface{ Result() *http.Response }
				switch i % 3 {
				case 0:
					rr = post(t, s, "/v1/enumerate", enumBody)
				case 1:
					rr = post(t, s, "/v1/predict",
						fmt.Sprintf(`{"workload":"ep","arm":{"nodes":%d}}`, 1+(i+id)%4))
				default:
					rr = get(t, s, "/healthz")
				}
				code := rr.Result().StatusCode
				answered.Add(1)
				// Under chaos every answer must still be a deliberate
				// status: success, a contained 500 (panic), or a
				// load-shedding/timeout/breaker 503/504. Anything else is
				// a broken serving path.
				switch code {
				case http.StatusOK, http.StatusInternalServerError,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					badStatus.Add(1)
				}
			}
		}(w)
	}

	// Observe until every resilience property has fired.
	var panics, opens, degraded float64
	for time.Now().Before(deadline) {
		snap := s.reg.Snapshot()
		panics = snap["heteromixd_panics_recovered_total"]
		opens = snap["heteromixd_breaker_opens_total"]
		degraded = snap["heteromixd_degraded_responses_total"]
		if panics >= 1 && opens >= 1 && degraded >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if panics < 1 {
		t.Errorf("no panic was injected and contained (panics_recovered_total = %v)", panics)
	}
	if opens < 1 {
		t.Errorf("breaker never opened under chaos (breaker_opens_total = %v)", opens)
	}
	if degraded < 3 {
		t.Errorf("degraded stale serving not observed (degraded_responses_total = %v)", degraded)
	}
	if n := badStatus.Load(); n > 0 {
		t.Errorf("%d responses outside the allowed status set", n)
	}
	if n := answered.Load(); n < int64(workers) {
		t.Errorf("only %d requests answered", n)
	}

	// The storm is over; the daemon is still alive and sane.
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz after soak: %d %s", rr.Code, rr.Body)
	}
	h := decodeBody[HealthResponse](t, rr)
	if h.PanicsRecovered < 1 {
		t.Errorf("healthz panics_recovered = %d", h.PanicsRecovered)
	}
	t.Logf("soak: %d requests, %v panics contained, %v breaker opens, %v degraded serves",
		answered.Load(), panics, opens, degraded)
}
