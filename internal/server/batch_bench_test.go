package server

// Benchmarks for the batch + table-cache amortization story, the make
// bench-batch gate. The headline pair: 64 warm predicts through one
// /v1/batch request versus the same 64 predicts as sequential
// single-endpoint requests in the same httptest harness — the batch
// must be at least ~5x cheaper per operation, since it pays the HTTP
// routing, decode and instrumentation tax once instead of 64 times.
// The generic pair measures what the compiled-table cache buys: a cold
// iteration recompiles the N-type tables, a warm one reuses them and
// pays only the enumeration.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// batch64 builds one batch body of 64 distinct predict items and the
// matching single-endpoint bodies.
func batch64() (string, []string) {
	singles := make([]string, 64)
	var b strings.Builder
	b.WriteString(`{"items":[`)
	for i := range singles {
		body := fmt.Sprintf(`{"workload":"ep","arm":{"nodes":%d},"amd":{"nodes":%d}}`, i%8+1, i/8)
		singles[i] = body
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"kind":"predict","request":`)
		b.WriteString(body)
		b.WriteByte('}')
	}
	b.WriteString(`]}`)
	return b.String(), singles
}

func BenchmarkBatch64WarmPredicts(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	batch, _ := batch64()
	// Prewarm: the measured iterations serve every item from cache.
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batch))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		b.Fatalf("prewarm status %d: %s", rr.Code, rr.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batch))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d", rr.Code)
		}
	}
}

func BenchmarkSequential64WarmPredicts(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	_, singles := batch64()
	for _, body := range singles { // prewarm
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range singles {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				b.Fatalf("status %d", rr.Code)
			}
		}
	}
}

// BenchmarkGenericColdTable pays the full price every iteration: both
// caches cleared, so the N-type tables recompile and the space
// re-enumerates.
func BenchmarkGenericColdTable(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	body := triBody + `,"work":1e6,"frontier_only":true}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Reset()
		s.tables.Reset()
		req := httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body)
		}
	}
}

// BenchmarkGenericWarmTable varies the work size every iteration so the
// result cache always misses while the compiled tables are reused —
// the delta against cold is what the table cache buys.
func BenchmarkGenericWarmTable(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	// Prewarm the table cache.
	req := httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic",
		strings.NewReader(triBody+`,"work":1e6,"frontier_only":true}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		b.Fatalf("prewarm status %d: %s", rr.Code, rr.Body)
	}
	builds := s.TableBuilds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`%s,"work":%d,"frontier_only":true}`, triBody, 1_000_000+i)
		req := httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body)
		}
	}
	b.StopTimer()
	if got := s.TableBuilds(); got != builds {
		b.Fatalf("warm iterations built tables: %d → %d", builds, got)
	}
}
