package server

// Tests for the compiled kernel-table cache behind the handlers: warm
// requests over an already-seen cluster must never rebuild a table, and
// the canonicalKey fallback must bypass the result cache instead of
// aliasing every unmarshalable value onto one shared key.

import (
	"net/http"
	"strings"
	"testing"
)

// TestGenericTableCacheReuseAcrossRequests pins the tentpole property:
// the table cache keys on the cluster spec alone, so a second
// /v1/enumerate-generic request over the same cluster with a different
// work size (a different result-cache key) performs zero table builds.
func TestGenericTableCacheReuseAcrossRequests(t *testing.T) {
	s := newTestServer(t, Options{MaxNodes: 8})
	cold := post(t, s, "/v1/enumerate-generic", triBody+`,"work":1e6}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.Code, cold.Body)
	}
	builds := s.TableBuilds()
	if builds == 0 {
		t.Fatal("cold request should have built tables")
	}
	warmStats := s.TableCacheStats()

	// Different work and different flags → result-cache misses, but the
	// same cluster spec → table-cache hits, zero further builds.
	for i, body := range []string{
		triBody + `,"work":2e6}`,
		triBody + `,"work":3e6,"prune":true}`,
		triBody + `,"work":2e6,"frontier_only":true}`,
	} {
		rr := post(t, s, "/v1/enumerate-generic", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %s", i, rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Cache") != "miss" {
			t.Fatalf("warm request %d should miss the result cache (distinct request)", i)
		}
	}
	if got := s.TableBuilds(); got != builds {
		t.Errorf("warm requests built tables: %d → %d, want 0 increments", builds, got)
	}
	if st := s.TableCacheStats(); st.Hits <= warmStats.Hits {
		t.Errorf("warm requests should hit the table cache: %+v", st)
	}
}

// TestPredictTableCacheSharedAcrossWork is the two-type analogue: the
// compiled cluster.Table is keyed by (workload, switch accounting), so
// distinct predict requests share it.
func TestPredictTableCacheSharedAcrossWork(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	if got := s.TableBuilds(); got != 1 {
		t.Fatalf("table builds after first predict = %d, want 1", got)
	}
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":2},"work":1e6}`)
	post(t, s, "/v1/predict", `{"workload":"ep","amd":{"nodes":3},"work":2e6}`)
	if got := s.TableBuilds(); got != 1 {
		t.Errorf("table builds after warm predicts = %d, want 1", got)
	}
	if st := s.TableCacheStats(); st.Hits < 2 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("table cache stats = %+v, want >=2 hits, 1 entry, positive bytes", st)
	}
}

// TestTableCacheMetricsExposed checks the scrape carries the
// table_cache_{hits,misses,evictions,bytes} series.
func TestTableCacheMetricsExposed(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":2}}`)
	rr := get(t, s, "/metrics")
	body := rr.Body.String()
	for _, want := range []string{
		"heteromixd_table_cache_hits_total 1",
		"heteromixd_table_cache_misses_total",
		"heteromixd_table_cache_evictions_total 0",
		"heteromixd_table_cache_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestCanonicalKeyFallbackBypassesCache is the regression test for the
// fallback collision: two different unmarshalable values used to share
// the key endpoint+"|unkeyable" — the first one cached would have been
// served for every later one. The fallback now disables caching for the
// request entirely.
func TestCanonicalKeyFallbackBypassesCache(t *testing.T) {
	if _, keyed := canonicalKey("predict", struct{ C chan int }{}); keyed {
		t.Fatal("unmarshalable value should report keyed=false")
	}
	if key, keyed := canonicalKey("predict", map[string]int{"a": 1}); !keyed || key != `predict|{"a":1}` {
		t.Fatalf("marshalable value should key canonically, got (%q, %v)", key, keyed)
	}

	s := newTestServer(t, Options{})
	runs := 0
	compute := func() (any, error) {
		runs++
		return []byte(`{"n":` + string(rune('0'+runs)) + `}`), nil
	}
	// keyed=false: every call computes, nothing is cached.
	for i := 1; i <= 2; i++ {
		v, cached, err := s.doCached("", false, compute)
		if err != nil || cached {
			t.Fatalf("unkeyed call %d: cached=%v err=%v", i, cached, err)
		}
		want := `{"n":` + string(rune('0'+i)) + `}`
		if got := string(v.([]byte)); got != want {
			t.Fatalf("unkeyed call %d served %q, want %q — stale cross-request body", i, got, want)
		}
	}
	if runs != 2 {
		t.Fatalf("compute ran %d times for 2 unkeyed calls, want 2", runs)
	}
	// Sanity: the same compute under a real key caches normally.
	if _, _, err := s.doCached("k", true, compute); err != nil {
		t.Fatal(err)
	}
	_, cached, err := s.doCached("k", true, compute)
	if err != nil || !cached {
		t.Fatalf("keyed call should hit: cached=%v err=%v", cached, err)
	}
	if runs != 3 {
		t.Fatalf("compute ran %d times, want 3", runs)
	}
}
