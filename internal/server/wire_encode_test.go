package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"heteromix/internal/cluster"
)

// randEnumResp builds a response exercising every omitempty branch.
func randEnumResp(rng *rand.Rand) EnumerateResponse {
	resp := EnumerateResponse{
		Workload:     []string{"ep", "graph<500>", "a&b", ""}[rng.Intn(4)],
		Work:         rng.NormFloat64() * 1e8,
		SpaceSize:    rng.Intn(1 << 20),
		Truncated:    rng.Intn(2) == 0,
		FrontierOnly: rng.Intn(2) == 0,
		Degraded:     rng.Intn(3) == 0,
	}
	switch rng.Intn(4) {
	case 0: // nil Points
	case 1:
		resp.Points = []cluster.PointSummary{}
	default:
		for i := rng.Intn(700); i >= 0; i-- {
			resp.Points = append(resp.Points, cluster.PointSummary{
				ARMNodes:        rng.Intn(8),
				ARMCores:        rng.Intn(3),
				ARMGHz:          float64(rng.Intn(3)) * 0.8,
				AMDNodes:        rng.Intn(8),
				AMDCores:        rng.Intn(3),
				AMDGHz:          float64(rng.Intn(3)) * 1.1,
				TimeSeconds:     rng.NormFloat64() * 1e3,
				EnergyJoules:    rng.Float64() * 1e-6, // straddles the exponent cutoff
				WorkARMFraction: rng.Float64(),
				Label:           "2x<4>@1.7 & 3x8",
			})
		}
	}
	resp.Returned = len(resp.Points)
	return resp
}

func randGenericResp(rng *rand.Rand) EnumerateGenericResponse {
	resp := EnumerateGenericResponse{
		Workload:     "ep",
		Work:         rng.Float64() * 1e8,
		SpaceSize:    rng.Uint64() % (1 << 30),
		PrunedSize:   uint64(rng.Intn(2)) * 12345, // 0 exercises omitempty
		Truncated:    rng.Intn(2) == 0,
		FrontierOnly: rng.Intn(2) == 0,
		Degraded:     rng.Intn(3) == 0,
	}
	if rng.Intn(4) > 0 {
		resp.TypeNames = []string{"arm-cortex-a9", "amd-opteron-k10"}
	}
	if rng.Intn(3) == 0 {
		resp.Shard = "2/4"
	}
	for i := rng.Intn(4) - 1; i >= 0; i-- {
		resp.Indices = append(resp.Indices, rng.Uint64())
		resp.FailedShards = append(resp.FailedShards, rng.Intn(16))
	}
	switch rng.Intn(4) {
	case 0:
	case 1:
		resp.Points = []cluster.GenericPointSummary{}
	default:
		for i := rng.Intn(500); i >= 0; i-- {
			p := cluster.GenericPointSummary{
				TimeSeconds:  rng.NormFloat64() * 1e4,
				EnergyJoules: rng.NormFloat64() * 1e7,
				Label:        "1xa9<4>@0.8 + 2xk10",
			}
			for g := rng.Intn(3); g >= 0; g-- {
				p.Groups = append(p.Groups, cluster.GenericGroupSummary{
					Type:         "arm-cortex-a9",
					Nodes:        rng.Intn(8),
					Cores:        rng.Intn(8),
					GHz:          rng.Float64() * 3,
					WorkFraction: rng.Float64(),
				})
			}
			resp.Points = append(resp.Points, p)
		}
	}
	resp.Returned = len(resp.Points)
	return resp
}

func TestEncodeEnumerateResponseMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		resp := randEnumResp(rng)
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := encodeEnumerateResponse(context.Background(), &resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("envelope mismatch:\n got %.300s\nwant %.300s", got, want)
		}
	}
}

func TestEncodeGenericResponseMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		resp := randGenericResp(rng)
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := encodeGenericResponse(context.Background(), &resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("envelope mismatch:\n got %.300s\nwant %.300s", got, want)
		}
	}
}

func TestEncodeRespectsCancellation(t *testing.T) {
	// Enough rows to guarantee at least one context poll (every
	// encodeCheckEvery+1 rows).
	n := encodeCheckEvery + 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	eresp := EnumerateResponse{Points: make([]cluster.PointSummary, n)}
	if _, err := encodeEnumerateResponse(ctx, &eresp); !errors.Is(err, context.Canceled) {
		t.Fatalf("encodeEnumerateResponse on cancelled ctx = %v, want context.Canceled", err)
	}
	gresp := EnumerateGenericResponse{Points: make([]cluster.GenericPointSummary, n)}
	if _, err := encodeGenericResponse(ctx, &gresp); !errors.Is(err, context.Canceled) {
		t.Fatalf("encodeGenericResponse on cancelled ctx = %v, want context.Canceled", err)
	}
}
