package server

// The disconnect soak: clients that abandon a streamed enumeration
// mid-flight must shed the walk, leak no goroutines, and never feed the
// breaker. Runs under `make stream-race`.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestStreamDisconnectShedsAndDoesNotLeak opens streamed enumerations
// over real TCP, reads the first line and hangs up, over and over; the
// server must cancel each walk, settle every handler goroutine, and
// count the disconnects — without tripping the breaker (abandonment is
// not a server failure).
func TestStreamDisconnectShedsAndDoesNotLeak(t *testing.T) {
	// A breaker threshold the soak would certainly cross if disconnects
	// were misclassified as compute failures.
	s := newTestServer(t, Options{MaxGenericSpace: 5_000_000, BreakerThreshold: 5, BreakerCooldown: time.Minute})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := `{"workload":"ep","types":[
		{"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},
		{"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},
		{"node":"amd-opteron-k10","max_nodes":4}],"limit":100000000}`

	// Warm the compiled tables so the baseline goroutine count is taken
	// after any lazy construction.
	warm, err := http.Post(hs.URL+"/v1/enumerate-generic?stream=1", "application/json",
		strings.NewReader(strings.Replace(body, `"limit":100000000`, `"limit":5`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()
	baseline := runtime.NumGoroutine()

	const rounds = 20
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			hs.URL+"/v1/enumerate-generic?stream=1", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read through the head and first row, then vanish mid-walk.
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("round %d: no head: %v", i, err)
		}
		br.ReadString('\n')
		cancel()
		resp.Body.Close()
	}

	// The handler goroutines unwind asynchronously after the hangup;
	// give them a bounded grace period.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
	}

	snap := s.reg.Snapshot()
	if snap["heteromixd_stream_disconnects_total"] == 0 {
		t.Error("stream_disconnects_total = 0 after the soak")
	}
	if snap["heteromixd_breaker_opens_total"] != 0 {
		t.Errorf("breaker opened %v times: disconnects were misclassified as failures",
			snap["heteromixd_breaker_opens_total"])
	}

	// The server is still perfectly healthy for a patient client.
	resp, err := http.Post(hs.URL+"/v1/enumerate-generic", "application/json",
		strings.NewReader(triBody+`,"frontier_only":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak request: %d", resp.StatusCode)
	}
}
