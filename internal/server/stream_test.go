package server

// Tests for the streaming wire layer: NDJSON negotiation, SSE, framing,
// byte-identity with the buffered responses, frontier deltas, gzip and
// the stream metrics.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// rawGenericResponse mirrors EnumerateGenericResponse but keeps every
// point's exact bytes, so streamed rows can be compared byte-for-byte
// against the buffered encoding.
type rawGenericResponse struct {
	Workload     string            `json:"workload"`
	Work         float64           `json:"work"`
	TypeNames    []string          `json:"type_names"`
	SpaceSize    uint64            `json:"space_size"`
	PrunedSize   uint64            `json:"pruned_size"`
	Returned     int               `json:"returned"`
	Truncated    bool              `json:"truncated"`
	FrontierOnly bool              `json:"frontier_only"`
	Points       []json.RawMessage `json:"points"`
	Indices      []uint64          `json:"indices"`
	FailedShards []int             `json:"failed_shards"`
	Degraded     bool              `json:"degraded"`
}

type rawEnumerateResponse struct {
	Workload  string            `json:"workload"`
	SpaceSize int               `json:"space_size"`
	Returned  int               `json:"returned"`
	Truncated bool              `json:"truncated"`
	Points    []json.RawMessage `json:"points"`
}

// ndjsonStream is a parsed NDJSON response: the head, the bare point
// rows (exact bytes), delta/progress records and the terminal record.
type ndjsonStream struct {
	head     streamHead
	rows     []string // bare point records, in order
	adds     []string
	dels     []string
	progress []shardProgress
	trailer  *streamTrailer
	errMsg   *string
}

func parseNDJSON(t testing.TB, body string) ndjsonStream {
	t.Helper()
	var st ndjsonStream
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	for i, line := range lines {
		if line == "" {
			t.Fatalf("blank NDJSON line %d in %q", i, body)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("line %d is not JSON: %q: %v", i, line, err)
		}
		switch {
		case probe["head"] != nil:
			if i != 0 {
				t.Fatalf("head record at line %d, want 0", i)
			}
			if err := json.Unmarshal(probe["head"], &st.head); err != nil {
				t.Fatal(err)
			}
		case probe["trailer"] != nil:
			st.trailer = new(streamTrailer)
			if err := json.Unmarshal(probe["trailer"], st.trailer); err != nil {
				t.Fatal(err)
			}
			if i != len(lines)-1 {
				t.Fatalf("trailer at line %d of %d", i, len(lines))
			}
		case probe["error"] != nil:
			var msg string
			if err := json.Unmarshal(probe["error"], &msg); err != nil {
				t.Fatal(err)
			}
			st.errMsg = &msg
		case probe["op"] != nil:
			var op struct {
				Op    string          `json:"op"`
				Point json.RawMessage `json:"point"`
			}
			if err := json.Unmarshal([]byte(line), &op); err != nil {
				t.Fatal(err)
			}
			if op.Op == "add" {
				st.adds = append(st.adds, string(op.Point))
			} else {
				st.dels = append(st.dels, string(op.Point))
			}
		case probe["progress"] != nil:
			var p shardProgress
			if err := json.Unmarshal(probe["progress"], &p); err != nil {
				t.Fatal(err)
			}
			st.progress = append(st.progress, p)
		default:
			st.rows = append(st.rows, line)
		}
	}
	return st
}

// postStream drives a negotiated NDJSON request through the routed
// handler (httptest.ResponseRecorder implements http.Flusher, so the
// chunk pushes run).
func postStream(t testing.TB, s *Server, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func sameRows(t *testing.T, what string, got []string, want []json.RawMessage) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: streamed %d rows, buffered %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != string(want[i]) {
			t.Fatalf("%s: row %d differs\nstream: %s\nbuffer: %s", what, i, got[i], want[i])
		}
	}
}

func TestStreamGenericFrontierMatchesBuffered(t *testing.T) {
	s := newTestServer(t, Options{})
	body := triBody + `,"frontier_only":true}`
	buf := post(t, s, "/v1/enumerate-generic", body)
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)

	rr := postStream(t, s, "/v1/enumerate-generic", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("streamed: %d %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	st := parseNDJSON(t, rr.Body.String())
	sameRows(t, "frontier", st.rows, want.Points)
	if st.head.SpaceSize != want.SpaceSize || st.head.PrunedSize != want.PrunedSize {
		t.Fatalf("head sizes %d/%d, buffered %d/%d",
			st.head.SpaceSize, st.head.PrunedSize, want.SpaceSize, want.PrunedSize)
	}
	if !st.head.FrontierOnly || st.head.Workload != "ep" {
		t.Fatalf("head = %+v", st.head)
	}
	if st.trailer == nil || st.trailer.Returned != want.Returned {
		t.Fatalf("trailer = %+v, buffered returned %d", st.trailer, want.Returned)
	}

	// ?stream=1 negotiates the same stream without the Accept header.
	req := httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic?stream=1", strings.NewReader(body))
	qr := httptest.NewRecorder()
	s.Handler().ServeHTTP(qr, req)
	if qr.Code != http.StatusOK || qr.Body.String() != rr.Body.String() {
		t.Fatalf("?stream=1 differs from Accept negotiation: %d", qr.Code)
	}
}

func TestStreamGenericFullWalkMatchesBuffered(t *testing.T) {
	s := newTestServer(t, Options{})
	body := triBody + `,"limit":40}`
	buf := post(t, s, "/v1/enumerate-generic", body)
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)
	if !want.Truncated {
		t.Fatal("test wants a truncated walk; raise the space or lower the limit")
	}

	st := parseNDJSON(t, postStream(t, s, "/v1/enumerate-generic", body, nil).Body.String())
	sameRows(t, "full walk", st.rows, want.Points)
	if st.trailer == nil || !st.trailer.Truncated || st.trailer.Returned != want.Returned {
		t.Fatalf("trailer = %+v, want truncated with %d rows", st.trailer, want.Returned)
	}
}

func TestStreamEnumerateMatchesBuffered(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, body := range []string{
		`{"workload":"ep","max_arm":3,"max_amd":3,"frontier_only":true}`,
		`{"workload":"ep","max_arm":3,"max_amd":3,"limit":25}`,
	} {
		buf := post(t, s, "/v1/enumerate", body)
		if buf.Code != http.StatusOK {
			t.Fatalf("buffered: %d %s", buf.Code, buf.Body)
		}
		want := decodeBody[rawEnumerateResponse](t, buf)
		rr := postStream(t, s, "/v1/enumerate", body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("streamed: %d %s", rr.Code, rr.Body)
		}
		st := parseNDJSON(t, rr.Body.String())
		sameRows(t, body, st.rows, want.Points)
		if st.head.SpaceSize != uint64(want.SpaceSize) {
			t.Fatalf("head space %d, buffered %d", st.head.SpaceSize, want.SpaceSize)
		}
		if st.trailer == nil || st.trailer.Returned != want.Returned || st.trailer.Truncated != want.Truncated {
			t.Fatalf("trailer %+v, buffered returned=%d truncated=%v", st.trailer, want.Returned, want.Truncated)
		}
	}
}

func TestStreamShardSliceMatchesBuffered(t *testing.T) {
	s := newTestServer(t, Options{})
	body := triBody + `,"frontier_only":true,"shard":"0/2"}`
	buf := post(t, s, "/v1/enumerate-generic", body)
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)
	st := parseNDJSON(t, postStream(t, s, "/v1/enumerate-generic", body, nil).Body.String())
	sameRows(t, "shard slice", st.rows, want.Points)
	if st.head.Shard != "0/2" {
		t.Fatalf("head shard = %q", st.head.Shard)
	}
	if st.trailer == nil || len(st.trailer.Indices) != len(want.Indices) {
		t.Fatalf("trailer indices %v, buffered %v", st.trailer, want.Indices)
	}
	for i := range want.Indices {
		if st.trailer.Indices[i] != want.Indices[i] {
			t.Fatalf("index %d: %d != %d", i, st.trailer.Indices[i], want.Indices[i])
		}
	}
}

func TestStreamFleetMatchesBuffered(t *testing.T) {
	f := newFleet(t, 3, Options{}, Options{})
	body := fleetShardedBody(3)
	buf := post(t, f.coord, "/v1/enumerate-generic", body)
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered fleet: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)

	rr := postStream(t, f.coord, "/v1/enumerate-generic", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("streamed fleet: %d %s", rr.Code, rr.Body)
	}
	st := parseNDJSON(t, rr.Body.String())
	sameRows(t, "fleet merge", st.rows, want.Points)
	if st.head.Shards != 3 {
		t.Fatalf("head shards = %d", st.head.Shards)
	}
	if len(st.progress) != 3 {
		t.Fatalf("progress records = %d, want one per shard: %+v", len(st.progress), st.progress)
	}
	seen := map[int]bool{}
	for _, p := range st.progress {
		if p.Failed {
			t.Fatalf("healthy fleet reported failed shard: %+v", p)
		}
		seen[p.Shard] = true
	}
	if len(seen) != 3 {
		t.Fatalf("progress shards %v, want 3 distinct", seen)
	}
	if st.trailer == nil || st.trailer.Degraded || st.trailer.Returned != want.Returned {
		t.Fatalf("trailer = %+v", st.trailer)
	}
}

func TestStreamFleetDegradedPartial(t *testing.T) {
	// Same computed kill pattern as TestFleetPartialWhenFailoverExhausted:
	// keep one replica alive chosen so at least one shard's whole top-2
	// failover walk is dead.
	const shards = 8
	f := newFleet(t, 4, Options{DisableHedge: true}, Options{})
	alive, expectFailed := partialKillPlan(f, shards)
	if alive < 0 {
		t.Skip("every shard's top-2 walk contains every replica (astronomically unlikely)")
	}
	for i := range f.chaos {
		if i != alive {
			f.chaos[i].Kill()
		}
	}
	rr := postStream(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(shards), nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded stream: %d %s", rr.Code, rr.Body)
	}
	st := parseNDJSON(t, rr.Body.String())
	if st.trailer == nil || !st.trailer.Degraded {
		t.Fatalf("partial merge not marked degraded in trailer: %+v", st.trailer)
	}
	if fmt.Sprint(st.trailer.FailedShards) != fmt.Sprint(expectFailed) {
		t.Fatalf("failed_shards = %v, want %v", st.trailer.FailedShards, expectFailed)
	}
	if len(st.rows) == 0 {
		t.Fatal("degraded partial streamed no rows at all")
	}
	failed := map[int]bool{}
	for _, p := range st.progress {
		if p.Failed {
			failed[p.Shard] = true
		}
	}
	for _, i := range expectFailed {
		if !failed[i] {
			t.Fatalf("shard %d failed but no failed progress record: %+v", i, st.progress)
		}
	}
}

func TestSSEEndpointMatchesBuffered(t *testing.T) {
	s := newTestServer(t, Options{})
	buf := post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`)
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)

	q := "workload=ep&types=arm-cortex-a9:2:switch,arm-cortex-a15:2:switch,amd-opteron-k10:2&frontier_only=1"
	rr := get(t, s, "/v1/enumerate-generic/stream?"+q)
	if rr.Code != http.StatusOK {
		t.Fatalf("SSE: %d %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rows []string
	var trailerSeen bool
	for _, msg := range strings.Split(rr.Body.String(), "\n\n") {
		if msg == "" {
			continue
		}
		var event, data string
		for _, ln := range strings.Split(msg, "\n") {
			if v, ok := strings.CutPrefix(ln, "event: "); ok {
				event = v
			}
			if v, ok := strings.CutPrefix(ln, "data: "); ok {
				data = v
			}
		}
		switch event {
		case "point":
			rows = append(rows, data)
		case "trailer":
			trailerSeen = true
		case "head", "progress":
		default:
			t.Fatalf("unexpected SSE event %q", event)
		}
	}
	if !trailerSeen {
		t.Fatal("SSE stream had no trailer event")
	}
	sameRows(t, "SSE", rows, want.Points)

	// Bad query parameters are still a plain 400, never a started stream.
	for _, bad := range []string{
		"workload=ep&types=bogus",
		"workload=ep&types=arm-cortex-a9:x",
		"workload=ep&types=arm-cortex-a9:2:wat",
		"workload=ep&types=arm-cortex-a9:2&frontier_only=zebra",
	} {
		if rr := get(t, s, "/v1/enumerate-generic/stream?"+bad); rr.Code != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400", bad, rr.Code)
		}
	}
}

// rowSet is a row multiset for delta replay.
func rowSet(rows []string) map[string]int {
	m := map[string]int{}
	for _, r := range rows {
		m[r]++
	}
	return m
}

func TestStreamDeltaCycle(t *testing.T) {
	s := newTestServer(t, Options{})
	bodyFor := func(maxA9 int) string {
		return fmt.Sprintf(`{"workload":"ep","types":[
			{"node":"arm-cortex-a9","max_nodes":%d,"needs_switch":true},
			{"node":"arm-cortex-a15","max_nodes":2,"needs_switch":true},
			{"node":"amd-opteron-k10","max_nodes":2}],
			"frontier_only":true,"delta":true}`, maxA9)
	}

	// First delta query: no predecessor, full mode.
	st1 := parseNDJSON(t, postStream(t, s, "/v1/enumerate-generic", bodyFor(2), nil).Body.String())
	if st1.head.Mode != "full" {
		t.Fatalf("first delta stream mode = %q, want full", st1.head.Mode)
	}
	if len(st1.adds)+len(st1.dels) != 0 {
		t.Fatal("full-mode stream carried ops")
	}

	// Same spec, moved bounds: delta mode, ops replaying to the new
	// frontier's exact multiset.
	buf := post(t, s, "/v1/enumerate-generic", strings.Replace(bodyFor(3), `"delta":true`, `"delta":false`, 1))
	if buf.Code != http.StatusOK {
		t.Fatalf("buffered ground truth: %d %s", buf.Code, buf.Body)
	}
	want := decodeBody[rawGenericResponse](t, buf)

	st2 := parseNDJSON(t, postStream(t, s, "/v1/enumerate-generic", bodyFor(3), nil).Body.String())
	if st2.head.Mode != "delta" {
		t.Fatalf("second stream mode = %q, want delta", st2.head.Mode)
	}
	if len(st2.rows) != 0 {
		t.Fatalf("delta stream carried %d bare rows", len(st2.rows))
	}
	if st2.trailer == nil || st2.trailer.Adds != len(st2.adds) || st2.trailer.Dels != len(st2.dels) {
		t.Fatalf("trailer op counts %+v vs %d adds / %d dels", st2.trailer, len(st2.adds), len(st2.dels))
	}
	if st2.trailer.Returned != want.Returned {
		t.Fatalf("delta trailer returned %d, buffered %d", st2.trailer.Returned, want.Returned)
	}
	got := rowSet(st1.rows)
	for _, d := range st2.dels {
		got[d]--
		if got[d] < 0 {
			t.Fatalf("delta deletes a row the client does not hold: %s", d)
		}
		if got[d] == 0 {
			delete(got, d)
		}
	}
	for _, a := range st2.adds {
		got[a]++
	}
	wantSet := map[string]int{}
	for _, p := range want.Points {
		wantSet[string(p)]++
	}
	if len(got) != len(wantSet) {
		t.Fatalf("replayed frontier has %d distinct rows, want %d", len(got), len(wantSet))
	}
	for r, n := range wantSet {
		if got[r] != n {
			t.Fatalf("replayed frontier misses %s", r)
		}
	}

	// A profile bump retires the predecessor: next delta query is full.
	if _, err := s.calib.Install("ep", "arm-cortex-a9", perturbedModel(t, "ep", "arm-cortex-a9", 1.25), "test"); err != nil {
		t.Fatal(err)
	}
	st3 := parseNDJSON(t, postStream(t, s, "/v1/enumerate-generic", bodyFor(3), nil).Body.String())
	if st3.head.Mode != "full" {
		t.Fatalf("post-bump stream mode = %q, want full", st3.head.Mode)
	}

	snap := s.reg.Snapshot()
	if snap["heteromixd_delta_hits_total"] < 1 || snap["heteromixd_delta_misses_total"] < 2 {
		t.Fatalf("delta counters: hits=%v misses=%v", snap["heteromixd_delta_hits_total"], snap["heteromixd_delta_misses_total"])
	}
}

func TestStreamDeltaValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		stream     bool
	}{
		{"buffered delta", triBody + `,"frontier_only":true,"delta":true}`, false},
		{"delta without frontier", triBody + `,"delta":true}`, true},
		{"delta with shard slice", triBody + `,"frontier_only":true,"shard":"0/2","delta":true}`, true},
	}
	for _, tc := range cases {
		var rr *httptest.ResponseRecorder
		if tc.stream {
			rr = postStream(t, s, "/v1/enumerate-generic", tc.body, nil)
		} else {
			rr = post(t, s, "/v1/enumerate-generic", tc.body)
		}
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, rr.Code, rr.Body)
		}
	}
}

func TestStreamRejectionsBeforeFirstByte(t *testing.T) {
	s := newTestServer(t, Options{})
	// Normalization failures answer plain statuses — the stream never starts.
	rr := postStream(t, s, "/v1/enumerate-generic", `{"workload":"nope","types":[{"node":"arm-cortex-a9","max_nodes":2}]}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d, want 400", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct == "application/x-ndjson" {
		t.Fatal("rejected request negotiated a stream")
	}
}

func TestStreamInBandError(t *testing.T) {
	// A deadline that expires mid-walk can only be reported in-band: the
	// head has shipped. The stream must end with an {"error": ...} record
	// and no trailer.
	s := newTestServer(t, Options{MaxGenericSpace: 5_000_000, RequestTimeout: 5 * time.Millisecond})
	body := `{"workload":"ep","types":[
		{"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},
		{"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},
		{"node":"amd-opteron-k10","max_nodes":4}],"limit":100000000}`
	rr := postStream(t, s, "/v1/enumerate-generic", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d (headers were already committed before the deadline)", rr.Code)
	}
	st := parseNDJSON(t, rr.Body.String())
	if st.errMsg == nil {
		t.Fatalf("no terminal error record in: %.200s...", rr.Body.String())
	}
	if st.trailer != nil {
		t.Fatal("errored stream still shipped a trailer")
	}
}

func TestStreamGzip(t *testing.T) {
	s := newTestServer(t, Options{})
	body := triBody + `,"frontier_only":true}`
	plain := postStream(t, s, "/v1/enumerate-generic", body, nil)

	rr := postStream(t, s, "/v1/enumerate-generic", body, map[string]string{"Accept-Encoding": "gzip"})
	if rr.Code != http.StatusOK {
		t.Fatalf("gzip stream: %d", rr.Code)
	}
	if enc := rr.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q", enc)
	}
	zr, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(unzipped) != plain.Body.String() {
		t.Fatal("gzipped stream decompresses to different bytes than the plain stream")
	}
}

func TestBufferedGzip(t *testing.T) {
	s := newTestServer(t, Options{})
	body := triBody + `,"frontier_only":true}`
	plain := post(t, s, "/v1/enumerate-generic", body)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain: %d", plain.Code)
	}
	if len(plain.Body.Bytes()) < gzipMinBytes {
		t.Fatalf("test body too small (%d bytes) to exercise gzip", plain.Body.Len())
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/enumerate-generic", strings.NewReader(body))
	req.Header.Set("Accept-Encoding", "gzip")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if enc := rr.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q", enc)
	}
	if rr.Header().Get("X-Cache") != "hit" {
		t.Fatal("cache stores uncompressed bodies; the gzip request should have hit")
	}
	zr, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(unzipped) != plain.Body.String() {
		t.Fatal("gzipped body decompresses to different bytes")
	}

	// Small responses are not worth a gzip frame.
	small := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(`{"workload":"ep","arm":{"nodes":1},"amd":{"nodes":1}}`))
	small.Header.Set("Accept-Encoding", "gzip")
	sr := httptest.NewRecorder()
	s.Handler().ServeHTTP(sr, small)
	if sr.Header().Get("Content-Encoding") == "gzip" {
		t.Fatal("small response was gzipped below gzipMinBytes")
	}
}

func TestAcceptsGzipNegotiation(t *testing.T) {
	cases := []struct {
		hdr  string
		want bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"GZIP", true},
		{"gzip;q=0", false},
		{"gzip;q=0.5", true},
		{"*", true},
		{"*;q=0", false},
		{"identity", false},
		{"deflate, *;q=0.1", true},
		{"gzip;q=0, *;q=1", false}, // explicit gzip entry wins over wildcard
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if tc.hdr != "" {
			r.Header.Set("Accept-Encoding", tc.hdr)
		}
		if got := acceptsGzip(r); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.hdr, got, tc.want)
		}
	}
}

func TestStreamMetricsExposed(t *testing.T) {
	s := newTestServer(t, Options{})
	postStream(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`, nil)
	postStream(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true,"delta":true}`, nil)

	rr := get(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	text := rr.Body.String()
	for _, name := range []string{
		"heteromixd_stream_rows_total",
		"heteromixd_stream_flushes_total",
		"heteromixd_stream_disconnects_total",
		"heteromixd_delta_hits_total",
		"heteromixd_delta_misses_total",
		"heteromixd_delta_adds_total",
		"heteromixd_delta_dels_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	snap := s.reg.Snapshot()
	if snap["heteromixd_stream_rows_total"] == 0 {
		t.Error("stream_rows_total = 0 after streamed responses")
	}
	if snap["heteromixd_stream_flushes_total"] == 0 {
		t.Error("stream_flushes_total = 0 after streamed responses")
	}
	if snap["heteromixd_delta_misses_total"] == 0 {
		t.Error("delta_misses_total = 0 after a first delta query")
	}
}
