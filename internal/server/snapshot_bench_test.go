package server

// Benchmarks and the CI gate for cold-start elimination: time from
// server construction to the first answers — one /v1/predict and one
// cold tri-cluster frontier enumeration (the same 384,344-config space
// bench-generic walks) — with and without a -preheat snapshot from a
// warm sibling. `make bench-preheat` runs both benchmarks plus
// TestPreheatSpeedupGate. Model fitting is shared across iterations
// (the Suite caches fitted models), so the numbers isolate exactly
// what a restart pays: table compilation and the enumeration walk
// versus a snapshot decode.

import (
	"net/http"
	"os"
	"testing"
	"time"
)

// benchGenericBody is the canonical tri-cluster frontier request: the
// expensive first answer a restarted replica owes its callers.
const benchGenericBody = `{"workload":"ep","types":[` +
	`{"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},` +
	`{"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},` +
	`{"node":"amd-opteron-k10","max_nodes":4}],` +
	`"frontier_only":true}`

// benchSnapshotPath builds one warm snapshot for the whole benchmark:
// a donor serves the canonical predict and tri-cluster bodies, then
// dumps its caches.
func benchSnapshotPath(tb testing.TB) string {
	tb.Helper()
	a := newTestServer(tb, Options{})
	for _, body := range []struct{ path, body string }{
		{"/v1/predict", snapPredictBody},
		{"/v1/enumerate-generic", benchGenericBody},
	} {
		if rr := post(tb, a, body.path, body.body); rr.Code != http.StatusOK {
			tb.Fatalf("warming %s: %d %s", body.path, rr.Code, rr.Body)
		}
	}
	path, _ := writeWarmSnapshot(tb, a)
	return path
}

// coldStart constructs a server (optionally preheated) and serves the
// first predict and the first tri-cluster enumeration, returning the
// restart-to-first-answers wall time and the request-only portion of
// the first predict.
func coldStart(tb testing.TB, snapshotPath string) (total, predict time.Duration) {
	tb.Helper()
	wantCache := "miss"
	if snapshotPath != "" {
		wantCache = "hit"
	}
	start := time.Now()
	s, err := New(Options{Models: testSuite(), SnapshotPath: snapshotPath})
	if err != nil {
		tb.Fatal(err)
	}
	predictStart := time.Now()
	rr := post(tb, s, "/v1/predict", snapPredictBody)
	predict = time.Since(predictStart)
	if rr.Code != http.StatusOK {
		tb.Fatalf("first predict: %d %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != wantCache {
		tb.Fatalf("first predict X-Cache = %q, want %q", got, wantCache)
	}
	rr = post(tb, s, "/v1/enumerate-generic", benchGenericBody)
	total = time.Since(start)
	s.Close()
	if rr.Code != http.StatusOK {
		tb.Fatalf("first enumerate: %d %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != wantCache {
		tb.Fatalf("first enumerate X-Cache = %q, want %q", got, wantCache)
	}
	return total, predict
}

func BenchmarkColdStartNoSnapshot(b *testing.B) {
	testSuite() // fit the models outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldStart(b, "")
	}
}

func BenchmarkColdStartPreheated(b *testing.B) {
	path := benchSnapshotPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldStart(b, path)
	}
}

// TestPreheatSpeedupGate is the bench-preheat CI gate. Three bars:
//
//  1. preheated restart-to-first-answers ≥4x faster than no-snapshot —
//     the snapshot decode must be much cheaper than recompiling the
//     kernel tables and walking the 384,344-config space;
//  2. the first predict request itself ≥4x faster preheated than cold
//     (a cache hit versus a table build plus evaluation);
//  3. the preheated first predict within 3x of a steady-state warm hit
//     on a server that never restarted — a preheated restart is
//     indistinguishable from no restart.
//
// Only runs under `make bench-preheat` (HETEROMIX_PREHEAT_GATE=1) so
// plain `go test ./...` stays fast.
func TestPreheatSpeedupGate(t *testing.T) {
	if os.Getenv("HETEROMIX_PREHEAT_GATE") != "1" {
		t.Skip("set HETEROMIX_PREHEAT_GATE=1 (make bench-preheat) to run the speedup gate")
	}
	path := benchSnapshotPath(t)

	const trials = 5
	type sample struct{ total, predict time.Duration }
	best := func(snapshotPath string) sample {
		min := sample{1<<63 - 1, 1<<63 - 1}
		for trial := 0; trial < trials; trial++ {
			total, predict := coldStart(t, snapshotPath)
			if total < min.total {
				min.total = total
			}
			if predict < min.predict {
				min.predict = predict
			}
		}
		return min
	}
	cold := best("")
	preheated := best(path)

	// Steady-state warm hit on a server that never restarted.
	warm := newTestServer(t, Options{})
	if rr := post(t, warm, "/v1/predict", snapPredictBody); rr.Code != http.StatusOK {
		t.Fatalf("warming: %d %s", rr.Code, rr.Body)
	}
	steady := time.Duration(1<<63 - 1)
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		rr := post(t, warm, "/v1/predict", snapPredictBody)
		if d := time.Since(start); d < steady {
			steady = d
		}
		if rr.Code != http.StatusOK || rr.Header().Get("X-Cache") != "hit" {
			t.Fatalf("steady-state predict: %d X-Cache=%q", rr.Code, rr.Header().Get("X-Cache"))
		}
	}

	totalSpeedup := float64(cold.total) / float64(preheated.total)
	predictSpeedup := float64(cold.predict) / float64(preheated.predict)
	t.Logf("restart-to-first-answers: cold %v, preheated %v (%.2fx)", cold.total, preheated.total, totalSpeedup)
	t.Logf("first predict: cold %v, preheated %v (%.2fx), steady-state %v", cold.predict, preheated.predict, predictSpeedup, steady)
	if totalSpeedup < 4.0 {
		t.Errorf("preheated restart only %.2fx faster than no-snapshot, want ≥4x (cold %v, preheated %v)",
			totalSpeedup, cold.total, preheated.total)
	}
	if predictSpeedup < 4.0 {
		t.Errorf("preheated first predict only %.2fx faster than cold, want ≥4x (cold %v, preheated %v)",
			predictSpeedup, cold.predict, preheated.predict)
	}
	if preheated.predict > 3*steady {
		t.Errorf("preheated first predict %v exceeds 3x steady-state warm hit %v", preheated.predict, steady)
	}
}
