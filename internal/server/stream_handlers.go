package server

// The streaming wire layer: NDJSON negotiation on the enumeration
// POSTs, the SSE GET variant, and incremental frontier deltas.
//
// A streamed enumeration never materializes its response: rows are
// encoded straight into internal/stream's pooled chunk buffer as the
// walk proves them, so peak memory is O(frontier) — the walk state plus
// one flush boundary — instead of O(space), and the first point reaches
// the client while the walk is still running. The serving contracts
// survive the framing change: errors before the first byte use the
// normal status mapping (400-never-500, breaker 503s), errors after it
// become a terminal {"error": ...} record, degraded fleet partials mark
// the trailer, and a client that disconnects cancels the walk instead
// of burning the rest of the enumeration.
//
// Deltas: a frontier-only stream with "delta": true is diffed against
// the servercache-held predecessor for the same spec-minus-bounds key
// (node types and switch flags, profile-versioned — but not max_nodes,
// work or limit), so a re-query that only moved its bounds ships
// {"op":"add"|"del"} records instead of the whole frontier. A miss or a
// profile bump falls back to a full stream, announced by the head
// record's "mode".

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"heteromix/internal/cluster"
	"heteromix/internal/stream"
	"heteromix/internal/stream/delta"
)

// wantsStream reports whether the client negotiated a streamed
// response: ?stream=1 or an Accept header naming NDJSON.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(strings.ToLower(r.Header.Get("Accept")), "application/x-ndjson")
}

// streamHead opens every stream: the response envelope minus the rows.
type streamHead struct {
	Workload     string   `json:"workload"`
	Work         float64  `json:"work"`
	TypeNames    []string `json:"type_names,omitempty"`
	SpaceSize    uint64   `json:"space_size"`
	PrunedSize   uint64   `json:"pruned_size,omitempty"`
	FrontierOnly bool     `json:"frontier_only,omitempty"`
	Shard        string   `json:"shard,omitempty"`
	Shards       int      `json:"shards,omitempty"`
	// Mode is set on delta-requested streams: "delta" when a predecessor
	// frontier was found and ops follow, "full" when the stream fell back
	// to whole rows (first query, or a profile bump retired the
	// predecessor).
	Mode string `json:"mode,omitempty"`
}

// streamTrailer closes every completed stream with the counts the
// buffered envelope would have carried.
type streamTrailer struct {
	Returned     int      `json:"returned"`
	Truncated    bool     `json:"truncated,omitempty"`
	Degraded     bool     `json:"degraded,omitempty"`
	FailedShards []int    `json:"failed_shards,omitempty"`
	Indices      []uint64 `json:"indices,omitempty"`
	Adds         int      `json:"adds,omitempty"`
	Dels         int      `json:"dels,omitempty"`
}

// shardProgress is the fleet coordinator's per-shard completion record,
// emitted as each sub-frontier lands so a live consumer can watch the
// gather advance.
type shardProgress struct {
	Shard  int  `json:"shard"`
	Points int  `json:"points"`
	Failed bool `json:"failed,omitempty"`
}

// liveStream is one in-flight streamed response: the record writer,
// the optional pooled gzip stage between it and the connection (whose
// frame the push drains at every chunk boundary, so compression never
// re-buffers the stream), and the flush chain that drives chunks all
// the way to the client.
type liveStream struct {
	req *http.Request
	gz  *gzip.Writer
	sw  *stream.Writer
}

// startStream commits the response to streaming: headers, status, the
// gzip stage when negotiated, and the record writer with the server's
// flush policy. After this point errors can only be reported in-band.
func (s *Server) startStream(w http.ResponseWriter, r *http.Request, format stream.Format) *liveStream {
	h := w.Header()
	if format == stream.SSE {
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
	} else {
		h.Set("Content-Type", "application/x-ndjson")
	}
	h.Add("Vary", "Accept-Encoding")
	ls := &liveStream{req: r}
	var dst io.Writer = w
	if acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		ls.gz = gzipGet(w)
		dst = ls.gz
	}
	fl, _ := w.(http.Flusher)
	push := func() error {
		if ls.gz != nil {
			if err := ls.gz.Flush(); err != nil {
				return err
			}
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	}
	ls.sw = stream.NewWriter(dst, push, format, stream.Policy{
		FlushBytes:    s.opts.StreamFlushBytes,
		FlushInterval: s.opts.StreamFlushInterval,
	})
	w.WriteHeader(http.StatusOK)
	return ls
}

// head emits the opening record and flushes it immediately — the head
// is the stream's time-to-first-byte, never held for a full chunk.
func (ls *liveStream) head(h streamHead) error {
	b, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := ls.sw.Record(stream.EventHead, func(buf []byte) []byte { return append(buf, b...) }); err != nil {
		return err
	}
	return ls.sw.Flush()
}

// trailer emits the closing record.
func (ls *liveStream) trailer(tr streamTrailer) error {
	b, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	return ls.sw.Record(stream.EventTrailer, func(buf []byte) []byte { return append(buf, b...) })
}

// shed reports whether the client has gone away: the connection write
// failed, or the request context was cancelled (as opposed to timing
// out). A shed stream ends silently — abandonment is not a server
// failure and must not feed the breaker.
func (ls *liveStream) shed() bool {
	return ls.sw.Err() != nil || errors.Is(ls.req.Context().Err(), context.Canceled)
}

// close flushes the remainder, tears down the gzip stage and settles
// the stream metrics.
func (ls *liveStream) close(s *Server) {
	ls.sw.Close()
	if ls.gz != nil {
		// Close writes the gzip footer; a dead connection just errors into
		// the void. The writer always goes back to the pool.
		ls.gz.Close()
		gzipPut(ls.gz)
	}
	st := ls.sw.Stats()
	s.streamRows.Add(st.Rows)
	s.streamFlushes.Add(st.Flushes)
	if ls.shed() {
		s.streamDisconnects.Inc()
	}
}

// finishStream settles a streamed handler: an error before the stream
// started takes the normal status mapping; after it, a terminal
// {"error": ...} record — unless the client is simply gone.
func (s *Server) finishStream(w http.ResponseWriter, r *http.Request, ls *liveStream, err error) {
	if ls == nil {
		if err != nil {
			replyError(w, r, err)
		}
		return
	}
	if err != nil && ls.sw.Err() == nil {
		msg := err.Error()
		var br badRequest
		if errors.As(err, &br) {
			msg = br.msg
		}
		ls.sw.Record(stream.EventError, func(b []byte) []byte { return stream.AppendString(b, msg) })
	}
	ls.close(s)
}

// streamEnumerate serves a negotiated NDJSON /v1/enumerate. The stream
// starts lazily inside the breaker: an open breaker or a table failure
// still answers a clean status, having written nothing.
func (s *Server) streamEnumerate(w http.ResponseWriter, r *http.Request, req EnumerateRequest) {
	ctx := r.Context()
	var ls *liveStream
	berr := s.breaker.Do(func() error {
		tbl, err := s.tableFor(req.Workload, req.NoSwitchEnergy)
		if err != nil {
			return err
		}
		ls = s.startStream(w, r, stream.NDJSON)
		if err := ls.head(streamHead{
			Workload:     req.Workload,
			Work:         req.Work,
			SpaceSize:    uint64(tbl.Size(req.MaxARM, req.MaxAMD)),
			FrontierOnly: req.FrontierOnly,
		}); err != nil {
			return nil
		}
		var tr streamTrailer
		if req.FrontierOnly {
			pts, _, err := tbl.Frontier(req.MaxARM, req.MaxAMD, req.Work)
			if err != nil {
				return err
			}
			for i := range pts {
				sum := pts[i].Summary()
				if ls.sw.Record(stream.EventPoint, func(b []byte) []byte {
					return stream.AppendPointSummary(b, &sum)
				}) != nil {
					return nil
				}
			}
			tr.Returned = len(pts)
		} else {
			walkErr := tbl.ForEach(req.MaxARM, req.MaxAMD, req.Work, func(p cluster.Point) bool {
				if tr.Returned >= req.Limit {
					tr.Truncated = true
					return false
				}
				sum := p.Summary()
				if ls.sw.Record(stream.EventPoint, func(b []byte) []byte {
					return stream.AppendPointSummary(b, &sum)
				}) != nil {
					// A failed write is a gone client: shed the rest of the walk.
					return false
				}
				tr.Returned++
				return tr.Returned&0xff != 0 || ctx.Err() == nil
			})
			if walkErr != nil {
				return walkErr
			}
			if ls.shed() {
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if ls.shed() {
			return nil
		}
		return ls.trailer(tr)
	})
	s.finishStream(w, r, ls, berr)
}

// deltaKey is the predecessor-frontier cache key: the profile-tagged
// workload plus the type list WITHOUT its bounds — node names and
// switch flags only, never max_nodes, work or limit — so a re-query
// that only moved its bounds lands on its predecessor. The
// "|workload@vN|" infix is the shape every versioned key carries, so
// the profile-bump sweep retires delta predecessors with everything
// else.
func (s *Server) deltaKey(req EnumerateGenericRequest) string {
	var b strings.Builder
	b.WriteString("deltaprev|")
	b.WriteString(s.profileTag(req.Workload))
	b.WriteString("|")
	for _, tr := range req.Types {
		b.WriteString("|")
		b.WriteString(tr.Node)
		if tr.NeedsSwitch {
			b.WriteString(":switch")
		}
	}
	return b.String()
}

// lookupDelta resolves a delta-requested stream's mode before the first
// byte: the predecessor rows on a hit, nil (full mode) on a miss.
func (s *Server) lookupDelta(req EnumerateGenericRequest) (key string, prev [][]byte, mode string) {
	key = s.deltaKey(req)
	if v, ok := s.cache.Get(key); ok {
		s.deltaHits.Inc()
		return key, delta.Split(v.([]byte)), "delta"
	}
	s.deltaMisses.Inc()
	return key, nil, "full"
}

// emitRows streams pre-encoded rows as point records.
func (ls *liveStream) emitRows(rows [][]byte) error {
	for _, row := range rows {
		row := row
		if err := ls.sw.Record(stream.EventPoint, func(b []byte) []byte { return append(b, row...) }); err != nil {
			return err
		}
	}
	return nil
}

// emitDelta streams the diff between the predecessor and the new
// frontier as add/del records, settling the trailer's op counts.
func (s *Server) emitDelta(ls *liveStream, prev, next [][]byte, tr *streamTrailer) error {
	ops := delta.Diff(prev, next)
	for _, op := range ops {
		ev := stream.EventDel
		if op.Add {
			tr.Adds++
		} else {
			tr.Dels++
		}
		if op.Add {
			ev = stream.EventAdd
		}
		row := op.Row
		if err := ls.sw.Record(ev, func(b []byte) []byte { return append(b, row...) }); err != nil {
			return err
		}
	}
	s.deltaAdds.Add(uint64(tr.Adds))
	s.deltaDels.Add(uint64(tr.Dels))
	return nil
}

// encodeGenericRows materializes each point's encoded row — only for
// the delta paths, which need the row set as data to diff and store;
// plain streams encode straight into the chunk buffer instead.
func encodeGenericRows(pts []cluster.GenericPoint, names []string) [][]byte {
	rows := make([][]byte, len(pts))
	for i := range pts {
		sum := pts[i].Summary(names)
		rows[i] = stream.AppendGenericPointSummary(nil, &sum)
	}
	return rows
}

// streamGeneric serves a negotiated streamed /v1/enumerate-generic
// (NDJSON on the POST, SSE on the GET variant): shard slices,
// frontier-only (where deltas apply), and the limited full walk.
func (s *Server) streamGeneric(w http.ResponseWriter, r *http.Request, req EnumerateGenericRequest, plan genericPlan, format stream.Format) {
	ctx := r.Context()
	var ls *liveStream
	berr := s.breaker.Do(func() error {
		head := streamHead{
			Workload:     req.Workload,
			Work:         req.Work,
			TypeNames:    plan.names,
			SpaceSize:    plan.spaceSize,
			PrunedSize:   plan.prunedSize,
			FrontierOnly: req.FrontierOnly,
			Shard:        req.Shard,
		}
		var prev [][]byte
		deltaKey := ""
		if req.Delta {
			deltaKey, prev, head.Mode = s.lookupDelta(req)
		}
		ls = s.startStream(w, r, format)
		if err := ls.head(head); err != nil {
			return nil
		}
		var tr streamTrailer
		switch {
		case plan.shard.Count > 0:
			sf, walked, err := s.shardFrontier(ctx, plan, req)
			if err != nil {
				if ls.shed() {
					return nil
				}
				return err
			}
			s.genericPoints.Add(walked)
			for i := range sf.Points {
				sum := sf.Points[i].Summary(plan.names)
				if ls.sw.Record(stream.EventPoint, func(b []byte) []byte {
					return stream.AppendGenericPointSummary(b, &sum)
				}) != nil {
					return nil
				}
			}
			tr.Returned = len(sf.Points)
			tr.Indices = sf.Indices
		case req.FrontierOnly:
			pts, _, err := plan.walk.FrontierParallel(req.Work, 0)
			if err != nil {
				return err
			}
			s.genericPoints.Add(plan.enumeratedSize())
			if req.Delta {
				rows := encodeGenericRows(pts, plan.names)
				tr.Returned = len(rows)
				var emitErr error
				if prev != nil {
					emitErr = s.emitDelta(ls, prev, rows, &tr)
				} else {
					emitErr = ls.emitRows(rows)
				}
				// The new frontier becomes the predecessor even if the client
				// vanished mid-emit: it reflects a completed walk.
				s.cache.Add(deltaKey, delta.Join(rows))
				if emitErr != nil {
					return nil
				}
			} else {
				for i := range pts {
					sum := pts[i].Summary(plan.names)
					if ls.sw.Record(stream.EventPoint, func(b []byte) []byte {
						return stream.AppendGenericPointSummary(b, &sum)
					}) != nil {
						return nil
					}
				}
				tr.Returned = len(pts)
			}
		default:
			n := 0
			walkErr := plan.walk.ForEach(req.Work, func(p cluster.GenericPoint) bool {
				n++
				if tr.Returned >= req.Limit {
					tr.Truncated = true
					return false
				}
				sum := p.Summary(plan.names)
				if ls.sw.Record(stream.EventPoint, func(b []byte) []byte {
					return stream.AppendGenericPointSummary(b, &sum)
				}) != nil {
					return false
				}
				tr.Returned++
				return n&0xff != 0 || ctx.Err() == nil
			})
			if walkErr != nil {
				return walkErr
			}
			if ls.shed() {
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			s.genericPoints.Add(uint64(n))
		}
		if plan.prunedSize > 0 {
			s.genericPruned.Add(plan.spaceSize - plan.prunedSize)
		}
		if ls.shed() {
			return nil
		}
		return ls.trailer(tr)
	})
	s.finishStream(w, r, ls, berr)
}

// streamFleetGeneric is the coordinator's streamed scatter-gather: the
// head ships before the fan-out, per-shard progress records land as
// each sub-frontier completes, and the merged rows follow the gather.
// (Rows cannot ship before the last shard answers — any shard may
// dominate any point — so the early bytes are the head and progress
// records, which is what keeps a dashboard live through a multi-second
// fan-out.) Degraded partial merges mark the trailer, are diffed but
// never stored as delta predecessors, and — like the buffered path —
// are never cached.
func (s *Server) streamFleetGeneric(w http.ResponseWriter, r *http.Request, req EnumerateGenericRequest, plan genericPlan, format stream.Format) {
	head := streamHead{
		Workload:     req.Workload,
		Work:         req.Work,
		TypeNames:    plan.names,
		SpaceSize:    plan.spaceSize,
		PrunedSize:   plan.prunedSize,
		FrontierOnly: req.FrontierOnly,
		Shards:       req.Shards,
	}
	var prev [][]byte
	deltaKey := ""
	if req.Delta {
		deltaKey, prev, head.Mode = s.lookupDelta(req)
	}
	ls := s.startStream(w, r, format)
	if err := ls.head(head); err != nil {
		ls.close(s)
		return
	}
	// Progress records come from shard goroutines; the mutex serializes
	// them against each other (the gather below only resumes after every
	// callback has returned).
	var mu sync.Mutex
	onShard := func(i, points int, shardErr error) {
		mu.Lock()
		defer mu.Unlock()
		if ls.sw.Err() != nil {
			return
		}
		b, err := json.Marshal(shardProgress{Shard: i, Points: points, Failed: shardErr != nil})
		if err != nil {
			return
		}
		ls.sw.Record(stream.EventProgress, func(buf []byte) []byte { return append(buf, b...) })
		ls.sw.Flush()
	}
	merged, failedShards, partDeg, err := s.fanOutGeneric(r, req, onShard)
	if err != nil {
		s.finishStream(w, r, ls, err)
		return
	}
	tr := streamTrailer{
		Returned:     len(merged.Points),
		FailedShards: failedShards,
		Degraded:     len(failedShards) > 0 || partDeg,
	}
	if tr.Degraded {
		s.degraded.Inc()
	}
	if plan.prunedSize > 0 {
		s.genericPruned.Add(plan.spaceSize - plan.prunedSize)
	}
	rows := make([][]byte, len(merged.Points))
	for i := range merged.Points {
		rows[i] = stream.AppendGenericPointSummary(nil, &merged.Points[i])
	}
	var emitErr error
	if req.Delta && prev != nil {
		emitErr = s.emitDelta(ls, prev, rows, &tr)
	} else {
		emitErr = ls.emitRows(rows)
	}
	if req.Delta && !tr.Degraded {
		// Only a complete merge may become the predecessor; a partial one
		// would turn its missing slices into phantom deletions next time.
		s.cache.Add(deltaKey, delta.Join(rows))
	}
	if emitErr != nil || ls.shed() {
		ls.close(s)
		return
	}
	ls.trailer(tr)
	ls.close(s)
}

// handleEnumerateGenericSSE is GET /v1/enumerate-generic/stream: the
// same space, negotiated by query parameters instead of a JSON body,
// framed as Server-Sent Events for EventSource consumers.
func (s *Server) handleEnumerateGenericSSE(w http.ResponseWriter, r *http.Request) {
	req, err := parseStreamQuery(r.URL.Query())
	if err != nil {
		replyError(w, r, err)
		return
	}
	norm, plan, err := s.normalizeEnumerateGeneric(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	if norm.Shards > 0 {
		s.streamFleetGeneric(w, r, norm, plan, stream.SSE)
		return
	}
	s.streamGeneric(w, r, norm, plan, stream.SSE)
}

// parseStreamQuery maps the SSE endpoint's query parameters onto an
// EnumerateGenericRequest. types is a comma-separated list of
// "node:max_nodes" or "node:max_nodes:switch" entries; booleans accept
// strconv.ParseBool forms. Every failure is a 400.
func parseStreamQuery(q url.Values) (EnumerateGenericRequest, error) {
	var req EnumerateGenericRequest
	req.Workload = q.Get("workload")
	if t := q.Get("types"); t != "" {
		for i, entry := range strings.Split(t, ",") {
			parts := strings.Split(entry, ":")
			if len(parts) < 2 || len(parts) > 3 {
				return req, badRequestf("types[%d]: want node:max_nodes[:switch], got %q", i, entry)
			}
			var tr GenericTypeRequest
			tr.Node = parts[0]
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return req, badRequestf("types[%d]: bad max_nodes %q", i, parts[1])
			}
			tr.MaxNodes = n
			if len(parts) == 3 {
				if parts[2] != "switch" {
					return req, badRequestf("types[%d]: trailing field must be \"switch\", got %q", i, parts[2])
				}
				tr.NeedsSwitch = true
			}
			req.Types = append(req.Types, tr)
		}
	}
	var err error
	if v := q.Get("work"); v != "" {
		if req.Work, err = strconv.ParseFloat(v, 64); err != nil {
			return req, badRequestf("bad work %q", v)
		}
	}
	boolParam := func(name string, into *bool) error {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return badRequestf("bad %s %q", name, v)
			}
			*into = b
		}
		return nil
	}
	if err := boolParam("frontier_only", &req.FrontierOnly); err != nil {
		return req, err
	}
	if err := boolParam("prune", &req.Prune); err != nil {
		return req, err
	}
	if err := boolParam("delta", &req.Delta); err != nil {
		return req, err
	}
	if v := q.Get("limit"); v != "" {
		if req.Limit, err = strconv.Atoi(v); err != nil {
			return req, badRequestf("bad limit %q", v)
		}
	}
	if v := q.Get("shards"); v != "" {
		if req.Shards, err = strconv.Atoi(v); err != nil {
			return req, badRequestf("bad shards %q", v)
		}
	}
	req.Shard = q.Get("shard")
	if v := q.Get("profile_version"); v != "" {
		if req.ProfileVersion, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, badRequestf("bad profile_version %q", v)
		}
	}
	return req, nil
}
