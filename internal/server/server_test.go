package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"heteromix/internal/cluster"
	"heteromix/internal/experiments"
	"heteromix/internal/hwsim"
	"heteromix/internal/queueing"
	"heteromix/internal/resilience"
	"heteromix/internal/units"
)

// sharedSuite fits the models once for the whole test binary; a Suite
// caches fitted models internally, so every test server built on it is
// cheap.
var (
	suiteOnce   sync.Once
	sharedSuite *experiments.Suite
)

func testSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		sharedSuite = experiments.NewSuite(experiments.SuiteOptions{Seed: 42})
	})
	return sharedSuite
}

func newTestServer(t testing.TB, opts Options) *Server {
	t.Helper()
	if opts.Models == nil {
		opts.Models = testSuite()
	}
	// `make chaos` reruns this suite with fault injection layered onto
	// every test server; tests that configure their own chaos keep it.
	if spec := os.Getenv("HETEROMIX_CHAOS"); spec != "" && !opts.Chaos.Enabled() {
		co, err := resilience.ParseChaosSpec(spec)
		if err != nil {
			t.Fatalf("HETEROMIX_CHAOS: %v", err)
		}
		opts.Chaos = co
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// post drives one request through the full routed handler.
func post(t testing.TB, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func get(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func decodeBody[T any](t *testing.T, rr *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rr.Body.String(), err)
	}
	return v
}

func maxOf(spec hwsim.NodeSpec) hwsim.Config {
	return hwsim.Config{Cores: spec.Cores, Frequency: spec.FMax()}
}

func TestPredictMatchesDirectEvaluation(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":3},"amd":{"nodes":2}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	resp := decodeBody[PredictResponse](t, rr)

	space, err := testSuite().Space("ep")
	if err != nil {
		t.Fatal(err)
	}
	want, err := space.Evaluate(cluster.Configuration{
		ARM: cluster.TypeConfig{Nodes: 3, Config: maxOf(space.ARM.Spec)},
		AMD: cluster.TypeConfig{Nodes: 2, Config: maxOf(space.AMD.Spec)},
	}, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Point.TimeSeconds != float64(want.Time) {
		t.Errorf("time %v, want %v", resp.Point.TimeSeconds, want.Time)
	}
	if resp.Work != 50e6 {
		t.Errorf("defaulted work = %v, want the EP analysis size 50e6", resp.Work)
	}
	if resp.Point.ARMNodes != 3 || resp.Point.AMDNodes != 2 {
		t.Errorf("nodes %d:%d", resp.Point.ARMNodes, resp.Point.AMDNodes)
	}
	if wantP := float64(want.Energy) / float64(want.Time); resp.AvgPowerWatts != wantP {
		t.Errorf("avg power %v, want %v", resp.AvgPowerWatts, wantP)
	}
}

func TestPredictCanonicalizationSharesCacheEntries(t *testing.T) {
	s := newTestServer(t, Options{})
	space, err := testSuite().Space("ep")
	if err != nil {
		t.Fatal(err)
	}
	// The same request three ways: defaults, explicit settings equal to
	// the defaults, and explicit work equal to the analysis size. All
	// must collapse onto one cache entry.
	bodies := []string{
		`{"workload":"ep","arm":{"nodes":4}}`,
		fmt.Sprintf(`{"workload":"ep","arm":{"nodes":4,"cores":%d,"ghz":%v}}`,
			space.ARM.Spec.Cores, space.ARM.Spec.FMax().GHzValue()),
		`{"workload":"ep","arm":{"nodes":4},"work":50e6}`,
	}
	var first string
	for i, body := range bodies {
		rr := post(t, s, "/v1/predict", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body)
		}
		wantCache := "hit"
		if i == 0 {
			wantCache = "miss"
			first = rr.Body.String()
		}
		if got := rr.Header().Get("X-Cache"); got != wantCache {
			t.Errorf("request %d X-Cache = %q, want %q", i, got, wantCache)
		}
		if rr.Body.String() != first {
			t.Errorf("request %d body differs from first:\n%s\nvs\n%s", i, rr.Body, first)
		}
	}
	if st := s.CacheStats(); st.Hits < 2 {
		t.Errorf("cache stats after equivalent requests: %+v", st)
	}
}

func TestPredictValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxNodes: 16})
	cases := map[string]string{
		"empty body":        ``,
		"not json":          `{`,
		"trailing data":     `{"workload":"ep","arm":{"nodes":1}} extra`,
		"unknown field":     `{"workload":"ep","arm":{"nodes":1},"wat":1}`,
		"unknown workload":  `{"workload":"nope","arm":{"nodes":1}}`,
		"missing workload":  `{"arm":{"nodes":1}}`,
		"no nodes":          `{"workload":"ep"}`,
		"negative nodes":    `{"workload":"ep","arm":{"nodes":-1}}`,
		"too many nodes":    `{"workload":"ep","arm":{"nodes":17}}`,
		"settings, 0 nodes": `{"workload":"ep","arm":{"cores":2}}`,
		"bad cores":         `{"workload":"ep","arm":{"nodes":1,"cores":99}}`,
		"bad ghz":           `{"workload":"ep","arm":{"nodes":1,"ghz":17.5}}`,
		"negative ghz":      `{"workload":"ep","arm":{"nodes":1,"ghz":-1}}`,
		"negative work":     `{"workload":"ep","arm":{"nodes":1},"work":-5}`,
		"huge work":         `{"workload":"ep","arm":{"nodes":1},"work":1e300}`,
		"nan work":          `{"workload":"ep","arm":{"nodes":1},"work":NaN}`,
	}
	for name, body := range cases {
		rr := post(t, s, "/v1/predict", body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, rr.Code, rr.Body)
		}
		if e := decodeBody[errorResponse](t, rr); e.Error == "" {
			t.Errorf("%s: error body missing", name)
		}
	}
}

func TestEnumerateFrontierMatchesBatch(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/enumerate",
		`{"workload":"ep","max_arm":5,"max_amd":4,"frontier_only":true}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[EnumerateResponse](t, rr)

	space, err := testSuite().Space("ep")
	if err != nil {
		t.Fatal(err)
	}
	wantPts, _, err := cluster.FrontierOf(space, 5, 4, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Returned != len(wantPts) || len(resp.Points) != len(wantPts) {
		t.Fatalf("frontier size %d, want %d", resp.Returned, len(wantPts))
	}
	for i, p := range resp.Points {
		if p.TimeSeconds != float64(wantPts[i].Time) {
			t.Errorf("point %d time %v, want %v", i, p.TimeSeconds, wantPts[i].Time)
		}
	}
	if resp.Truncated {
		t.Error("frontier response marked truncated")
	}
	if want, err := space.Enumerate(5, 4, 50e6); err != nil || resp.SpaceSize != len(want) {
		t.Errorf("space_size = %d, want %d (err %v)", resp.SpaceSize, len(want), err)
	}
}

func TestEnumerateLimitTruncates(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/enumerate",
		`{"workload":"ep","max_arm":3,"max_amd":3,"limit":7}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[EnumerateResponse](t, rr)
	if resp.Returned != 7 || len(resp.Points) != 7 {
		t.Errorf("returned %d points, want 7", resp.Returned)
	}
	if !resp.Truncated {
		t.Error("truncated flag not set")
	}
	if resp.SpaceSize <= 7 {
		t.Errorf("space_size %d should exceed the limit", resp.SpaceSize)
	}
}

func TestEnumerateValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxNodes: 16})
	for name, body := range map[string]string{
		"no bounds":      `{"workload":"ep"}`,
		"negative bound": `{"workload":"ep","max_arm":-1,"max_amd":2}`,
		"too large":      `{"workload":"ep","max_arm":17}`,
		"negative limit": `{"workload":"ep","max_arm":2,"limit":-1}`,
		"unknown field":  `{"workload":"ep","max_arm":2,"points":true}`,
		"bad workload":   `{"workload":"x","max_arm":2}`,
	} {
		if rr := post(t, s, "/v1/enumerate", body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body)
		}
	}
}

func TestBudgetSeries(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/budget", `{"workload":"ep","budget_watts":400}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[BudgetResponse](t, rr)
	if resp.SubstitutionRatio != 8 {
		t.Errorf("substitution ratio %d, want the paper's 8", resp.SubstitutionRatio)
	}
	// 400 W fits 6 AMD nodes → 7 mixes from AMD-only to ARM-only.
	if len(resp.Mixes) != 7 {
		t.Fatalf("%d mixes, want 7", len(resp.Mixes))
	}
	if first := resp.Mixes[0]; first.ARM != 0 || first.AMD != 6 {
		t.Errorf("first mix %d:%d, want 0:6", first.ARM, first.AMD)
	}
	if last := resp.Mixes[len(resp.Mixes)-1]; last.AMD != 0 || last.ARM != 48 {
		t.Errorf("last mix %d:%d, want 48:0", last.ARM, last.AMD)
	}
	for i, m := range resp.Mixes {
		if m.PeakWatts > 400 {
			t.Errorf("mix %d peak %v W exceeds the budget", i, m.PeakWatts)
		}
		if m.Point.TimeSeconds <= 0 || m.Point.EnergyJoules <= 0 {
			t.Errorf("mix %d has an unevaluated point: %+v", i, m.Point)
		}
	}
}

func TestBudgetValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxNodes: 32})
	for name, body := range map[string]string{
		"zero budget":      `{"workload":"ep","budget_watts":0}`,
		"negative budget":  `{"workload":"ep","budget_watts":-100}`,
		"below one node":   `{"workload":"ep","budget_watts":10}`,
		"beyond max nodes": `{"workload":"ep","budget_watts":100000}`,
	} {
		if rr := post(t, s, "/v1/budget", body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body)
		}
	}
}

func TestQueueingMatchesModel(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/queueing",
		`{"arrival_rate":0.5,"service_time_seconds":1,"scv":0,"window_seconds":3600,"per_job_joules":100,"idle_power_watts":50}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[QueueingResponse](t, rr)
	q := queueing.MG1{ArrivalRate: 0.5, MeanService: 1, SCV: 0}
	want := q.Summary()
	if resp.Utilization != want.Utilization || resp.MeanWaitSeconds != want.MeanWaitSeconds {
		t.Errorf("summary %+v, want %+v", resp.Summary, want)
	}
	if resp.EnergyJoules == nil {
		t.Fatal("energy accounting missing despite window_seconds")
	}
	wantE, err := q.EnergyOverWindow(3600, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if *resp.EnergyJoules != float64(wantE) {
		t.Errorf("energy %v, want %v", *resp.EnergyJoules, wantE)
	}

	// Without the window the energy field is absent entirely.
	rr = post(t, s, "/v1/queueing", `{"arrival_rate":0.5,"service_time_seconds":1}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if strings.Contains(rr.Body.String(), "energy_joules") {
		t.Errorf("energy reported without a window: %s", rr.Body)
	}
}

func TestQueueingValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"unstable":        `{"arrival_rate":2,"service_time_seconds":1}`,
		"zero arrivals":   `{"arrival_rate":0,"service_time_seconds":1}`,
		"zero service":    `{"arrival_rate":1,"service_time_seconds":0}`,
		"negative scv":    `{"arrival_rate":0.5,"service_time_seconds":1,"scv":-1}`,
		"negative window": `{"arrival_rate":0.5,"service_time_seconds":1,"window_seconds":-10}`,
		"negative energy": `{"arrival_rate":0.5,"service_time_seconds":1,"window_seconds":10,"per_job_joules":-1}`,
	} {
		if rr := post(t, s, "/v1/queueing", body); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	rr := get(t, s, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	h := decodeBody[HealthResponse](t, rr)
	if h.Status != "ok" || h.Version == "" || h.GoVersion == "" {
		t.Errorf("health = %+v", h)
	}
	if len(h.Workloads) == 0 {
		t.Error("no workloads advertised")
	}
	if h.KernelTables != 1 {
		t.Errorf("kernel_table_builds = %d after one predict, want 1", h.KernelTables)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime %v", h.UptimeSeconds)
	}
}

func TestMetricsAndExpvar(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	post(t, s, "/v1/predict", `{"workload":"bogus"}`)

	rr := get(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`heteromixd_requests_total{endpoint="predict"} 3`,
		`heteromixd_request_errors_total{endpoint="predict"} 1`,
		`heteromixd_cache_hits_total 1`,
		`heteromixd_kernel_table_builds_total 1`,
		`heteromixd_build_info{version=`,
		`heteromixd_request_latency_seconds_bucket{endpoint="predict",le="+Inf"} 3`,
		`# TYPE heteromixd_request_latency_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	rr = get(t, s, "/debug/vars")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", rr.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if _, ok := vars["heteromixd"]; !ok {
		t.Error("expvar missing the heteromixd map")
	}
}

func TestRoutingErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	if rr := get(t, s, "/v1/predict"); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict status %d, want 405", rr.Code)
	}
	if rr := get(t, s, "/nope"); rr.Code != http.StatusNotFound {
		t.Errorf("GET /nope status %d, want 404", rr.Code)
	}
}

func TestBodyTooLargeRejected(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 64})
	body := `{"workload":"ep","arm":{"nodes":1},"work":` +
		strings.Repeat("1", 100) + `}`
	rr := post(t, s, "/v1/predict", body)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d, want 413", rr.Code)
	}
	if e := decodeBody[errorResponse](t, rr); e.Error == "" {
		t.Error("413 without a JSON error body")
	}
	// A body exactly at the limit is not oversized.
	if rr := post(t, s, "/v1/queueing", `{"arrival_rate":1,"service_time_seconds":0.5}`); rr.Code != http.StatusOK {
		t.Errorf("in-bounds body status %d: %s", rr.Code, rr.Body)
	}
}

// shedRetryAfter must stay inside [1, 3] seconds and actually jitter —
// a constant would make a shed herd retry in lockstep.
func TestShedRetryAfterJitterBounds(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := shedRetryAfter()
		if v != "1" && v != "2" && v != "3" {
			t.Fatalf("Retry-After %q outside [1, 3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws produced only %v; no jitter", seen)
	}
}

func TestConcurrencyLimiterSheds(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s.testHookStart = func(ep string) {
		if ep == "predict" {
			once.Do(func() { close(started) })
			<-gate
		}
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	}()
	<-started

	// The slot is held; the next limited request is shed immediately.
	rr := post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":2}}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("second request status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// Unlimited endpoints still answer.
	if rr := get(t, s, "/healthz"); rr.Code != http.StatusOK {
		t.Errorf("healthz under load: %d", rr.Code)
	}
	close(gate)
	if rr := <-done; rr.Code != http.StatusOK {
		t.Errorf("held request finished %d, want 200", rr.Code)
	}
}

func TestRequestTimeoutAnswers503(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: time.Millisecond})
	s.testHookStart = func(ep string) {
		if ep == "enumerate" {
			time.Sleep(20 * time.Millisecond)
		}
	}
	rr := post(t, s, "/v1/enumerate", `{"workload":"ep","max_arm":3,"max_amd":3}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", rr.Code, rr.Body)
	}
	if got := s.reg.Snapshot()["heteromixd_timeouts_total"]; got != 1 {
		t.Errorf("timeouts counter = %v, want 1", got)
	}
}

// blockingSource delegates to an inner ModelSource but runs a hook
// before building, letting a test hold the one singleflight runner
// inside its computation while the other callers pile up behind it.
type blockingSource struct {
	inner ModelSource
	hold  func()
}

func (b *blockingSource) Space(workload string) (cluster.Space, error) {
	if b.hold != nil {
		b.hold()
	}
	return b.inner.Space(workload)
}

// TestEnumerateSingleflight proves the acceptance property: N identical
// enumerate requests arriving together build exactly one kernel table
// (and compute the frontier once), the rest collapsing onto the runner.
func TestEnumerateSingleflight(t *testing.T) {
	const callers = 8
	src := &blockingSource{inner: testSuite()}
	s := newTestServer(t, Options{Models: src, MaxConcurrent: callers})

	// Every request reaches the handler before any computes...
	var arrived sync.WaitGroup
	arrived.Add(callers)
	gate := make(chan struct{})
	s.testHookStart = func(ep string) {
		if ep == "enumerate" {
			arrived.Done()
			<-gate
		}
	}
	// ...and the one that wins the singleflight slot stays inside the
	// model build until the other callers have demonstrably collapsed
	// onto it, so the sharing is observed and not a scheduling accident.
	src.hold = func() {
		deadline := time.Now().Add(5 * time.Second)
		for s.CacheStats().Collapsed < callers-1 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}

	const body = `{"workload":"memcached","max_arm":6,"max_amd":4,"frontier_only":true}`
	results := make(chan *httptest.ResponseRecorder, callers)
	for i := 0; i < callers; i++ {
		go func() { results <- post(t, s, "/v1/enumerate", body) }()
	}
	arrived.Wait()
	close(gate)

	var first string
	for i := 0; i < callers; i++ {
		rr := <-results
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body)
		}
		if first == "" {
			first = rr.Body.String()
		} else if rr.Body.String() != first {
			t.Errorf("request %d body differs", i)
		}
	}
	if got := s.TableBuilds(); got != 1 {
		t.Fatalf("kernel table built %d times for %d identical requests, want 1", got, callers)
	}
	if st := s.CacheStats(); st.Collapsed != callers-1 {
		t.Errorf("collapsed = %d, want %d (%+v)", st.Collapsed, callers-1, st)
	}
}

// TestGracefulShutdown serves on a real listener, parks a request
// in-flight, shuts down, and requires the in-flight request to complete
// while the listener stops accepting.
func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t, Options{ShutdownGrace: 5 * time.Second})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s.testHookStart = func(ep string) {
		if ep == "predict" {
			once.Do(func() { close(started) })
			<-gate
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	url := "http://" + l.Addr().String() + "/v1/predict"
	type result struct {
		code int
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"workload":"ep","arm":{"nodes":1}}`))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{code: resp.StatusCode, body: string(b)}
	}()
	<-started

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()

	// Shutdown closes the listener before draining; wait until new
	// connections are refused while the in-flight request still holds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, derr := net.DialTimeout("tcp", l.Addr().String(), 100*time.Millisecond)
		if derr != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(gate) // let the in-flight request finish
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.code != http.StatusOK || !strings.Contains(res.body, "time_seconds") {
		t.Errorf("in-flight request: status %d body %s", res.code, res.body)
	}
	if err := <-shutErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve returned %v after graceful shutdown, want nil", err)
	}
}

// TestRunStopsOnContextCancel exercises the daemon entrypoint: Run
// serves until its context is cancelled, then drains and returns nil.
func TestRunStopsOnContextCancel(t *testing.T) {
	s := newTestServer(t, Options{ShutdownGrace: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	runCtx, stop := context.WithCancel(ctx)
	runErr := make(chan error, 1)
	// Port 0 picks a free port; we only need start/stop mechanics here.
	go func() { runErr <- s.Run(runCtx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	stop()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("Run did not return after cancel")
	}
}

func TestNewRequiresModels(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted empty Options")
	}
}

func TestUnitsSanity(t *testing.T) {
	// Guard the assumption the queueing endpoint relies on: units types
	// are plain float64 seconds/joules/watts.
	if units.Seconds(1.5) != 1.5 {
		t.Fatal("units.Seconds is not a plain float64")
	}
}
