package server

// Cold-start elimination: the serving side of internal/snapshot.
//
// A heteromixd restart used to start with empty caches — the first
// /v1/predict paid a full kernel-table compile and the first
// /v1/enumerate-generic two of them. Three mechanisms close that gap:
//
//   - Preheat: with Options.SnapshotPath set, New decodes and validates
//     the snapshot file before the listener can open and loads the
//     hottest entries that fit the caches' entry and byte limits, so
//     the first request is a cache hit.
//   - Background writer: with SnapshotInterval > 0 the hottest entries
//     persist atomically (temp file + rename, self-verified by a decode
//     of the encoded bytes) every interval and once more on Close.
//   - Peer warming: with PeerWarm set, the first ring sibling the fleet
//     prober sees healthy donates its hottest entries over
//     GET /v1/snapshot. The pull carries this replica's calibration
//     state hash; a sibling under different profiles answers 409 and
//     nothing loads — a stale snapshot never poisons a cache.
//
// Every load path is all-or-nothing: compatibility (profile state hash,
// model fingerprint, build version, format version) is checked first,
// every artifact is rebuilt from its dump before either cache is
// touched, and any failure leaves the caches exactly as they were.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"heteromix/internal/buildinfo"
	"heteromix/internal/cluster"
	"heteromix/internal/fleethealth"
	"heteromix/internal/snapshot"
	"heteromix/internal/tablecache"
)

const (
	// defaultMaxSnapshotBytes caps snapshot files and bodies (64 MiB).
	defaultMaxSnapshotBytes = 64 << 20
	// profileHashHeader carries the requester's calibration state hash on
	// GET /v1/snapshot; a mismatch answers 409 instead of serving entries
	// the requester could never validate.
	profileHashHeader = "X-Profile-Hash"
)

// snapshotInfo is the last applied-or-written snapshot's identity,
// reported by /healthz.
type snapshotInfo struct {
	hash    string
	created time.Time
	tables  int
	generic int
	results int
}

// modelFingerprint identifies the base model source's deterministic
// inputs (experiments.Suite implements it); sources without one bind
// snapshots to the build version alone.
func (s *Server) modelFingerprint() string {
	if fp, ok := s.opts.Models.(interface{ ModelFingerprint() string }); ok {
		return fp.ModelFingerprint()
	}
	return ""
}

// parseTableKey splits a two-type table cache key
// ("table|<workload>@v<N>|<noSwitch>") back into the restore inputs a
// loader needs. Keys are minted by tableFor, so a parse failure means
// the entry is not a two-type table and is skipped.
func parseTableKey(key string) (workload string, noSwitch bool, ok bool) {
	parts := strings.Split(key, "|")
	if len(parts) != 3 || parts[0] != "table" {
		return "", false, false
	}
	i := strings.LastIndex(parts[1], "@v")
	if i <= 0 {
		return "", false, false
	}
	return parts[1][:i], parts[2] == "true", true
}

// BuildSnapshot harvests the caches' hottest entries into a snapshot
// bound to the current profile state, model fingerprint and build.
// Harvesting preserves recency order (hottest first) without perturbing
// it, so the loader can trim to any prefix and keep the hottest tail.
func (s *Server) BuildSnapshot() *snapshot.Snapshot {
	return s.buildSnapshot(-1, -1)
}

// buildSnapshot bounds the harvest: negative limits take everything, 0
// skips the section — the size-capping loop in handleSnapshotGet halves
// its way down to 0.
func (s *Server) buildSnapshot(maxTables, maxResults int) *snapshot.Snapshot {
	snap := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			BuildVersion:     buildinfo.Get().String(),
			ProfileHash:      s.calib.StateHash(),
			ModelFingerprint: s.modelFingerprint(),
			CreatedUnixNano:  time.Now().UnixNano(),
		},
	}
	if maxTables != 0 {
		lim := maxTables
		if lim < 0 {
			lim = 0 // Hottest: 0 = everything
		}
		for _, e := range s.tables.Hottest(lim) {
			switch v := e.Val.(type) {
			case *cluster.Table:
				workload, noSwitch, ok := parseTableKey(e.Key)
				if !ok {
					continue
				}
				snap.Tables = append(snap.Tables, snapshot.TableEntry{
					Key: e.Key, Workload: workload, NoSwitch: noSwitch, Dump: v.Dump(),
				})
			case *genericTables:
				snap.Generic = append(snap.Generic, snapshot.GenericEntry{
					Key: e.Key, Full: v.full.Dump(), Pruned: v.pruned.Dump(),
				})
			}
		}
	}
	if maxResults != 0 {
		lim := maxResults
		if lim < 0 {
			lim = 0
		}
		for _, e := range s.cache.Hottest(lim) {
			body, ok := e.Val.([]byte)
			if !ok {
				// Only marshaled response bodies snapshot; other values are
				// process-local.
				continue
			}
			snap.Results = append(snap.Results, snapshot.ResultEntry{Key: e.Key, Body: body})
		}
	}
	return snap
}

// keyedArtifact pairs a rebuilt table artifact with its cache key
// during the apply pass.
type keyedArtifact struct {
	key string
	val tablecache.Artifact
}

// applySnapshot validates a decoded snapshot against this server's
// state and loads it into the caches. All-or-nothing: any
// incompatibility or corrupt dump returns before either cache is
// touched. Loading is capacity-aware — each cache takes the hottest
// prefix that fits its entry and byte limits, inserted coldest-first so
// the insert order itself can never evict a hotter just-loaded entry.
func (s *Server) applySnapshot(snap *snapshot.Snapshot) error {
	if err := snap.Meta.Compatible(s.calib.StateHash(), s.modelFingerprint(), buildinfo.Get().String()); err != nil {
		return err
	}
	// Rebuild every artifact before the first insert. Because the state
	// hash matched, the snapshot's keys embed exactly the profile
	// versions this server would mint, and Space resolves the same
	// models the donor compiled against.
	arts := make([]keyedArtifact, 0, len(snap.Tables)+len(snap.Generic))
	for _, e := range snap.Tables {
		space, err := s.models.Space(e.Workload)
		if err != nil {
			return fmt.Errorf("snapshot table %q: %w", e.Key, err)
		}
		space.NoSwitchEnergy = e.NoSwitch
		tbl, err := space.NewTableFromDump(e.Dump)
		if err != nil {
			return fmt.Errorf("snapshot table %q: %w", e.Key, err)
		}
		arts = append(arts, keyedArtifact{key: e.Key, val: tbl})
	}
	for _, e := range snap.Generic {
		full, err := cluster.NewGenericTableFromDump(e.Full)
		if err != nil {
			return fmt.Errorf("snapshot generic %q: %w", e.Key, err)
		}
		pruned, err := cluster.NewGenericTableFromDump(e.Pruned)
		if err != nil {
			return fmt.Errorf("snapshot generic %q: %w", e.Key, err)
		}
		arts = append(arts, keyedArtifact{key: e.Key, val: &genericTables{full: full, pruned: pruned}})
	}

	// Trim each list to the hottest prefix that fits. The combined table
	// list walks two-type tables before generic artifacts — the predict
	// hot path wins when the byte budget cannot hold both.
	keptTables := 0
	var tableBytes int64
	capN, budget := s.tables.Capacity(), s.tables.MaxBytes()
	for _, a := range arts {
		if keptTables >= capN {
			break
		}
		if sz := int64(a.val.SizeBytes()); budget > 0 && tableBytes+sz > budget {
			break
		} else {
			tableBytes += sz
		}
		keptTables++
	}
	keptResults := 0
	var resultBytes int64
	rbudget := s.cache.MaxBytes()
	for _, e := range snap.Results {
		if keptResults >= s.opts.CacheEntries {
			break
		}
		if sz := int64(len(e.Body)); rbudget > 0 && resultBytes+sz > rbudget {
			break
		} else {
			resultBytes += sz
		}
		keptResults++
	}

	// Insert coldest-first so the caches' recency order ends hottest-
	// first, exactly as the donor held them.
	nTables, nGeneric := 0, 0
	for i := keptTables - 1; i >= 0; i-- {
		s.tables.Add(arts[i].key, arts[i].val)
		if _, ok := arts[i].val.(*genericTables); ok {
			nGeneric++
		} else {
			nTables++
		}
	}
	for i := keptResults - 1; i >= 0; i-- {
		s.cache.Add(snap.Results[i].Key, snap.Results[i].Body)
	}
	s.setSnapInfo(snap, nTables, nGeneric, keptResults)
	return nil
}

func (s *Server) setSnapInfo(snap *snapshot.Snapshot, tables, generic, results int) {
	s.snapMu.Lock()
	s.snapInfo = snapshotInfo{
		hash:    snap.FileHash,
		created: time.Unix(0, snap.Meta.CreatedUnixNano),
		tables:  tables,
		generic: generic,
		results: results,
	}
	s.snapMu.Unlock()
}

// preheat loads the snapshot file during New, before the listener can
// open. A missing file is a normal first start; an incompatible one is
// counted and skipped (cold start); a corrupt one is an error the
// caller turns into a failed New.
func (s *Server) preheat(path string) error {
	snap, err := snapshot.ReadFile(path, s.opts.MaxSnapshotBytes)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := s.applySnapshot(snap); err != nil {
		var ie *snapshot.IncompatibleError
		if errors.As(err, &ie) {
			s.snapshotRejects.Inc()
			return nil
		}
		return err
	}
	s.snapshotLoads.Inc()
	if fi, err := os.Stat(path); err == nil {
		s.snapshotBytes.Set(fi.Size())
	}
	return nil
}

// snapshotWriter persists the hottest cache entries every
// SnapshotInterval, and once more when Close stops it, with the same
// atomic write-rename + self-verify discipline as the calibration
// snapshot (internal/snapshot.WriteFile).
func (s *Server) snapshotWriter() {
	defer close(s.snapDone)
	t := time.NewTicker(s.opts.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.saveSnapshot()
		case <-s.snapStop:
			s.saveSnapshot()
			return
		}
	}
}

func (s *Server) saveSnapshot() {
	snap := s.BuildSnapshot()
	if err := snapshot.WriteFile(s.opts.SnapshotPath, snap); err != nil {
		s.snapshotSaveErrs.Inc()
		return
	}
	s.snapshotSaves.Inc()
	if fi, err := os.Stat(s.opts.SnapshotPath); err == nil {
		s.snapshotBytes.Set(fi.Size())
	}
	s.setSnapInfo(snap, len(snap.Tables), len(snap.Generic), len(snap.Results))
}

// handleSnapshotGet serves this server's hottest entries as a binary
// snapshot for a sibling's peer warm. A requester that states its
// calibration hash (X-Profile-Hash or ?profile_hash=) and differs gets
// 409 — cheaper than shipping megabytes the requester must then reject,
// and it keeps cache poisoning structurally impossible. Oversized
// harvests are halved until they fit MaxSnapshotBytes: a size-capped
// snapshot drops the coldest entries, never the hottest.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	want := r.Header.Get(profileHashHeader)
	if want == "" {
		want = r.URL.Query().Get("profile_hash")
	}
	have := s.calib.StateHash()
	if want != "" && want != have {
		s.snapshotRejects.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict,
			"profile state %s does not match requested %s", have, want)
		return
	}
	snap := s.BuildSnapshot()
	data := snapshot.Encode(snap)
	tl, rl := len(snap.Tables)+len(snap.Generic), len(snap.Results)
	for int64(len(data)) > s.opts.MaxSnapshotBytes && (tl > 0 || rl > 0) {
		tl, rl = tl/2, rl/2
		snap = s.buildSnapshot(tl, rl)
		data = snapshot.Encode(snap)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(profileHashHeader, snap.Meta.ProfileHash)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// maybePeerWarm launches one warm pull the first time a replica probe
// lands Healthy. The latch resets on failure so a later transition (or
// the same sibling recovering again) retries.
func (s *Server) maybePeerWarm(target string, to fleethealth.State) {
	if !s.opts.PeerWarm || to != fleethealth.Healthy {
		return
	}
	if !s.peerWarmed.CompareAndSwap(false, true) {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
		defer cancel()
		if err := s.WarmFromPeer(ctx, target); err != nil {
			s.peerWarmed.Store(false)
		}
	}()
}

// peerWarmAtStartup watches the fleet prober's snapshots until a
// sibling shows healthy and makes the initial warm pull — the cold
// start the OnTransition hook cannot see because siblings that were
// healthy all along never transition. Attempts are bounded: a sibling
// that keeps refusing (e.g. divergent profiles) hands retry duty back
// to the transition hook instead of polling forever.
func (s *Server) peerWarmAtStartup() {
	defer close(s.warmDone)
	const maxStartupAttempts = 5
	d := s.opts.ProbeInterval / 4
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	tick := time.NewTicker(d)
	defer tick.Stop()
	attempts := 0
	for {
		select {
		case <-s.warmStop:
			return
		case <-tick.C:
			if s.peerWarmed.Load() {
				return
			}
			snap := s.health.Snapshot()
			for _, rep := range snap.Replicas {
				if rep.State == fleethealth.Healthy {
					s.maybePeerWarm(rep.URL, fleethealth.Healthy)
					attempts++
					break
				}
			}
			if attempts >= maxStartupAttempts {
				return
			}
		}
	}
}

// WarmFromPeer pulls target's snapshot over GET /v1/snapshot and loads
// it, breaker-guarded like every other fleet call. Exported so tests
// and operator tooling can trigger a warm deterministically.
func (s *Server) WarmFromPeer(ctx context.Context, target string) error {
	if s.fleet == nil {
		return fmt.Errorf("peer warming requires a fleet-enabled server")
	}
	var status int
	var body []byte
	err := s.fleet.breakerFor(target).Do(func() error {
		u := strings.TrimSuffix(target, "/") + "/v1/snapshot"
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		req.Header.Set(routedHeader, "1")
		req.Header.Set(profileHashHeader, s.calib.StateHash())
		resp, err := s.fleet.c.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(io.LimitReader(resp.Body, s.opts.MaxSnapshotBytes+1))
		if err != nil {
			return err
		}
		status = resp.StatusCode
		return nil
	})
	if err != nil {
		return fmt.Errorf("warming from %s: %w", target, err)
	}
	switch {
	case status == http.StatusConflict:
		s.snapshotRejects.Inc()
		return fmt.Errorf("peer %s refused snapshot: profile state differs", target)
	case status != http.StatusOK:
		s.snapshotRejects.Inc()
		return fmt.Errorf("peer %s answered %d to snapshot pull", target, status)
	case int64(len(body)) > s.opts.MaxSnapshotBytes:
		s.snapshotRejects.Inc()
		return fmt.Errorf("peer %s snapshot: %w", target, snapshot.ErrTooLarge)
	}
	snap, err := snapshot.DecodeLimited(body, s.opts.MaxSnapshotBytes)
	if err != nil {
		s.snapshotRejects.Inc()
		return fmt.Errorf("peer %s snapshot: %w", target, err)
	}
	if err := s.applySnapshot(snap); err != nil {
		s.snapshotRejects.Inc()
		return fmt.Errorf("peer %s snapshot: %w", target, err)
	}
	s.snapshotLoads.Inc()
	s.snapshotBytes.Set(int64(len(body)))
	return nil
}

// SnapshotHealth is /healthz's view of the snapshot subsystem, present
// once any snapshot has been loaded, written or rejected.
type SnapshotHealth struct {
	// FileHash identifies the last snapshot loaded or written.
	FileHash string `json:"file_hash,omitempty"`
	// AgeSeconds is how old that snapshot's content is (its creation
	// time, not when this process touched it).
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	// Tables, Generic and Results count the entries it carried (loads
	// report what fit the caches, saves what was harvested).
	Tables  int    `json:"tables"`
	Generic int    `json:"generic"`
	Results int    `json:"results"`
	Loads   uint64 `json:"loads"`
	Saves   uint64 `json:"saves"`
	Rejects uint64 `json:"rejects"`
}

func (s *Server) snapshotHealth() *SnapshotHealth {
	loads, saves, rejects := s.snapshotLoads.Value(), s.snapshotSaves.Value(), s.snapshotRejects.Value()
	s.snapMu.Lock()
	info := s.snapInfo
	s.snapMu.Unlock()
	if loads == 0 && saves == 0 && rejects == 0 && info.hash == "" {
		return nil
	}
	h := &SnapshotHealth{
		FileHash: info.hash,
		Tables:   info.tables,
		Generic:  info.generic,
		Results:  info.results,
		Loads:    loads,
		Saves:    saves,
		Rejects:  rejects,
	}
	if !info.created.IsZero() && info.created.Unix() != 0 {
		h.AgeSeconds = time.Since(info.created).Seconds()
	}
	return h
}
