package server

// The self-healing acceptance suite: kill/revive soaks against the
// fleet-in-one harness, driven by ReplicaChaos (reversible faults) and
// ProbeFleet (deterministic health-state stepping). `make fleet-heal`
// runs these under the race detector.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"heteromix/internal/fleethealth"
)

// replicaGauge reads the coordinator's fleet_replica_state gauge for
// one replica URL out of a metrics snapshot.
func replicaGauge(t *testing.T, s *Server, url string) float64 {
	t.Helper()
	key := fmt.Sprintf(`heteromixd_fleet_replica_state{target=%q}`, url)
	v, ok := s.reg.Snapshot()[key]
	if !ok {
		t.Fatalf("no %s in metrics snapshot", key)
	}
	return v
}

// fleetState reads one replica's probed state from the coordinator.
func fleetState(t *testing.T, s *Server, url string) fleethealth.State {
	t.Helper()
	rep, ok := s.FleetHealth().Get(url)
	if !ok {
		t.Fatalf("replica %s not in health snapshot", url)
	}
	return rep.State
}

// TestFleetKillDetectExcludeRevive is the tentpole acceptance walk: a
// killed replica's shards fail over within the same fan-out, probes
// confirm the death (healthy → suspect → dead, observable in /metrics
// and /healthz), the dead replica is excluded from candidate walks so
// later fan-outs waste no attempts on it, and after revival the
// hysteresis path (recovering → healthy) restores routing.
func TestFleetKillDetectExcludeRevive(t *testing.T) {
	f := newFleet(t, 4, Options{}, Options{})
	plain := newTestServer(t, Options{})
	ctx := context.Background()
	victim := f.primaryOf(t, 0)
	victimURL := f.urls[victim]

	check := func(stage string, work float64) {
		t.Helper()
		want := post(t, plain, "/v1/enumerate-generic", unshardedWorkBody(work))
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetWorkBody(4, work))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", stage, rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Degraded") == "true" {
			t.Fatalf("%s: degraded merge with healthy replicas available: %s", stage, rr.Body)
		}
		if rr.Body.String() != want.Body.String() {
			t.Fatalf("%s: merge not bit-identical to unsharded", stage)
		}
	}

	// Baseline: everything healthy.
	check("baseline", 6e7)
	if got := replicaGauge(t, f.coord, victimURL); got != float64(fleethealth.Healthy) {
		t.Fatalf("baseline gauge = %v, want healthy (0)", got)
	}

	// Kill. The very next fan-out still answers full and bit-identical —
	// request-time failover, no probe needed.
	f.chaos[victim].Kill()
	check("killed, pre-probe", 6e7+1)

	// Probes confirm the death: suspect after 1 failure, dead after 3
	// (the defaults), with the labeled gauge tracking each step.
	f.coord.ProbeFleet(ctx)
	if st := fleetState(t, f.coord, victimURL); st != fleethealth.Suspect {
		t.Fatalf("after 1 failed probe: %v, want suspect", st)
	}
	f.coord.ProbeFleet(ctx)
	f.coord.ProbeFleet(ctx)
	if st := fleetState(t, f.coord, victimURL); st != fleethealth.Dead {
		t.Fatalf("after 3 failed probes: %v, want dead", st)
	}
	if got := replicaGauge(t, f.coord, victimURL); got != float64(fleethealth.Dead) {
		t.Fatalf("gauge = %v, want dead (2)", got)
	}

	// /healthz exposes the same view.
	hz := get(t, f.coord, "/healthz")
	health := decodeBody[HealthResponse](t, hz)
	if health.Fleet == nil {
		t.Fatal("coordinator /healthz has no fleet section")
	}
	found := false
	for _, rep := range health.Fleet.Replicas {
		if rep.URL == victimURL {
			found = true
			if rep.State != "dead" {
				t.Fatalf("healthz reports %q, want dead", rep.State)
			}
			if rep.LastError == "" {
				t.Error("dead replica has no last_error in healthz")
			}
		}
	}
	if !found {
		t.Fatalf("victim %s missing from healthz fleet section", victimURL)
	}

	// Once dead, the replica is excluded before a byte is sent: fan-outs
	// stay full with no new failovers or hedges.
	before := f.coord.reg.Snapshot()
	check("probed dead", 6e7+2)
	after := f.coord.reg.Snapshot()
	if d := after["heteromixd_fleet_failovers_total"] - before["heteromixd_fleet_failovers_total"]; d != 0 {
		t.Errorf("probed-dead fan-out still failed over %v times", d)
	}

	// Revive. One good probe makes it recovering (still unroutable —
	// hysteresis), the second healthy again.
	f.chaos[victim].Revive()
	f.coord.ProbeFleet(ctx)
	if st := fleetState(t, f.coord, victimURL); st != fleethealth.Recovering {
		t.Fatalf("after 1 good probe: %v, want recovering", st)
	}
	f.coord.ProbeFleet(ctx)
	if st := fleetState(t, f.coord, victimURL); st != fleethealth.Healthy {
		t.Fatalf("after 2 good probes: %v, want healthy", st)
	}
	if got := replicaGauge(t, f.coord, victimURL); got != float64(fleethealth.Healthy) {
		t.Fatalf("gauge after revival = %v, want healthy (0)", got)
	}
	check("revived", 6e7+3)

	// The snapshot version moved on every transition.
	if v := f.coord.FleetHealth().Version; v < 5 {
		t.Errorf("snapshot version = %d after 4 transitions, want >= 5", v)
	}
}

// TestFleetKillReviveSoak keeps traffic flowing while replicas die and
// come back: every 200 non-degraded answer must be bit-identical to the
// unsharded ground truth, degraded partials must never be cached, and
// the fleet must end the soak serving full merges again.
func TestFleetKillReviveSoak(t *testing.T) {
	f := newFleet(t, 4, Options{}, Options{})
	plain := newTestServer(t, Options{})
	ctx := context.Background()

	truth := map[float64]string{}
	wantBody := func(work float64) string {
		if b, ok := truth[work]; ok {
			return b
		}
		rr := post(t, plain, "/v1/enumerate-generic", unshardedWorkBody(work))
		if rr.Code != http.StatusOK {
			t.Fatalf("ground truth for work %g: %d", work, rr.Code)
		}
		truth[work] = rr.Body.String()
		return truth[work]
	}

	sawFull, sawRecovered := false, false
	deadSince := -1
	for round := 0; round < 24; round++ {
		// Kill a rotating victim for three rounds out of every six, with
		// probes marking it dead, then revive and probe it back in.
		switch round % 6 {
		case 0:
			victim := (round / 6) % len(f.chaos)
			f.chaos[victim].Kill()
			for i := 0; i < 3; i++ {
				f.coord.ProbeFleet(ctx)
			}
			deadSince = victim
		case 3:
			f.chaos[deadSince].Revive()
			f.coord.ProbeFleet(ctx)
			f.coord.ProbeFleet(ctx)
			sawRecovered = true
		}

		work := 7e7 + float64(round)
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetWorkBody(4, work))
		switch rr.Code {
		case http.StatusOK:
			if rr.Header().Get("X-Degraded") == "true" {
				// With 3 of 4 replicas healthy a degraded merge would be a
				// failover bug, not an availability condition.
				t.Fatalf("round %d: degraded with one dead replica: %s", round, rr.Body)
			}
			if rr.Body.String() != wantBody(work) {
				t.Fatalf("round %d: merge not bit-identical under churn", round)
			}
			sawFull = true
		default:
			t.Fatalf("round %d: status %d: %s", round, rr.Code, rr.Body)
		}
	}
	if !sawFull || !sawRecovered {
		t.Fatalf("soak exercised too little: full=%v recovered=%v", sawFull, sawRecovered)
	}
	// The fleet ends the soak with every replica routable again.
	f.chaos[deadSince].Revive()
	f.coord.ProbeFleet(ctx)
	f.coord.ProbeFleet(ctx)
	for _, rep := range f.coord.FleetHealth().Replicas {
		if !rep.State.Routable() {
			t.Errorf("replica %s ends the soak %v", rep.URL, rep.State)
		}
	}
}

// waitGoroutinesBelow polls until the goroutine count drops to the
// bound or the deadline passes — in-flight hedge losers need a moment
// to observe their cancelled contexts. Keep-alive pool goroutines
// (client readLoop/writeLoop pairs and the server ends of those
// connections) are not leaks, so idle connections are torn down before
// each count; the fleet client rides http.DefaultClient.
func waitGoroutinesBelow(bound int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		http.DefaultClient.CloseIdleConnections()
		n := runtime.NumGoroutine()
		if n <= bound || !time.Now().Before(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetHedgeRescuesSlowReplica: a replica that is alive but slow
// (cold caches after revival) stalls its shards past the hedge delay;
// the hedge to the next candidate wins, the fan-out finishes far below
// the stall, and the cancelled losers leak no goroutines. The same plan
// with hedging disabled eats the full stall — the tail-latency win the
// hedge exists for.
func TestFleetHedgeRescuesSlowReplica(t *testing.T) {
	const stall = 2 * time.Second
	f := newFleet(t, 2, Options{}, Options{})
	noHedge := newTestServer(t, Options{Replicas: f.urls, DisableHedge: true, ProbeInterval: time.Hour})
	slow := f.primaryOf(t, 0) // shard 0's primary will stall
	f.chaos[slow].SlowStart(stall)

	base := runtime.NumGoroutine()

	start := time.Now()
	rr := post(t, f.coord, "/v1/enumerate-generic", fleetWorkBody(2, 8e7))
	hedged := time.Since(start)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Degraded") == "true" {
		t.Fatalf("hedged fan-out: %d degraded=%q %s", rr.Code, rr.Header().Get("X-Degraded"), rr.Body)
	}
	if hedged >= stall {
		t.Fatalf("hedged fan-out took %v, at or beyond the %v stall", hedged, stall)
	}
	snap := f.coord.reg.Snapshot()
	if snap["heteromixd_fleet_hedges_total"] < 1 {
		t.Errorf("fleet_hedges_total = %v, want >= 1", snap["heteromixd_fleet_hedges_total"])
	}
	if snap["heteromixd_fleet_hedge_wins_total"] < 1 {
		t.Errorf("fleet_hedge_wins_total = %v, want >= 1", snap["heteromixd_fleet_hedge_wins_total"])
	}

	// Same stall, hedging off: the fan-out waits out the slow replica.
	start = time.Now()
	rn := post(t, noHedge, "/v1/enumerate-generic", fleetWorkBody(2, 8e7+1))
	unhedged := time.Since(start)
	if rn.Code != http.StatusOK {
		t.Fatalf("no-hedge fan-out: %d %s", rn.Code, rn.Body)
	}
	if unhedged <= hedged {
		t.Errorf("no-hedge fan-out (%v) not slower than hedged (%v) under a %v stall",
			unhedged, hedged, stall)
	}
	if unhedged < stall {
		t.Errorf("no-hedge fan-out took %v, expected to eat the full %v stall", unhedged, stall)
	}

	// Cancelled hedge losers drain: the goroutine count settles back to
	// (about) the baseline instead of accumulating stuck HTTP calls.
	f.chaos[slow].Revive()
	if n := waitGoroutinesBelow(base+8, 5*time.Second); n > base+8 {
		t.Errorf("goroutines settled at %d, baseline %d: hedge losers leaked", n, base)
	}

	// The loser's cancellation was neutral: the slow replica's breaker
	// must still be closed, so one hedge never sheds a healthy replica.
	if st := f.coord.fleet.breakerFor(f.urls[slow]).State(); st.String() != "closed" {
		t.Errorf("slow replica's breaker = %v after losing a hedge, want closed", st)
	}
}

// TestDeadlinePropagation: the coordinator stamps X-Deadline-Ms on
// every shard sub-request, with the budget below its own remaining
// timeout (the 10% gather margin), and replicas parse it.
func TestDeadlinePropagation(t *testing.T) {
	f := newFleet(t, 2, Options{RequestTimeout: 10 * time.Second}, Options{})
	rr := post(t, f.coord, "/v1/enumerate-generic", fleetWorkBody(2, 9e7))
	if rr.Code != http.StatusOK {
		t.Fatalf("fan-out: %d %s", rr.Code, rr.Body)
	}
	var stamped float64
	for _, rs := range f.replicas {
		stamped += rs.reg.Snapshot()["heteromixd_deadline_capped_total"]
	}
	if stamped < 2 {
		t.Fatalf("deadline_capped_total across replicas = %v, want >= 2 (one per shard)", stamped)
	}
}

// TestDeadlineHeaderRejectsMalformed pins the 400-never-500 contract on
// the new header: garbage, non-positive, overflow and beyond-cap values
// are all client errors; a valid tighter deadline is honored and
// counted.
func TestDeadlineHeaderRejectsMalformed(t *testing.T) {
	s := newTestServer(t, Options{})
	body := `{"workload":"ep","arm":{"nodes":1}}`
	for _, bad := range []string{"abc", "-5", "0", "1.5", " 7", "99999999999999999999", "3600001"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		req.Header.Set("X-Deadline-Ms", bad)
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms=%q: %d, want 400", bad, rr.Code)
		}
	}
	// A generous valid deadline serves normally without capping.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set("X-Deadline-Ms", "3600000")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("valid deadline: %d %s", rr.Code, rr.Body)
	}
	if got := s.reg.Snapshot()["heteromixd_deadline_capped_total"]; got != 0 {
		t.Errorf("deadline_capped_total = %v after a looser-than-timeout deadline, want 0", got)
	}
	// GET endpoints ignore the header entirely (only limited endpoints
	// accept propagated deadlines).
	greq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	greq.Header.Set("X-Deadline-Ms", "garbage")
	grr := httptest.NewRecorder()
	s.Handler().ServeHTTP(grr, greq)
	if grr.Code != http.StatusOK {
		t.Errorf("healthz with garbage deadline header: %d, want 200", grr.Code)
	}
}

// TestDeadlineShedsWork: a tight propagated deadline caps the handler's
// timeout, so a stalled compute answers 503 at the deadline instead of
// finishing an answer nobody will read — and the cap is counted. The
// enumerate walk polls ctx, and a cold key has no stale entry to fall
// back on, so the expired deadline surfaces as a shed.
func TestDeadlineShedsWork(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: 30 * time.Second})
	s.testHookStart = func(endpoint string) {
		if endpoint == "enumerate" {
			time.Sleep(150 * time.Millisecond)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/enumerate",
		strings.NewReader(`{"workload":"ep","max_arm":2,"max_amd":2}`))
	req.Header.Set("X-Deadline-Ms", "50")
	start := time.Now()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	elapsed := time.Since(start)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("tight deadline: %d %s, want 503", rr.Code, rr.Body)
	}
	if elapsed >= 10*time.Second {
		t.Fatalf("request ran %v, deadline did not cap the timeout", elapsed)
	}
	if got := s.reg.Snapshot()["heteromixd_deadline_capped_total"]; got < 1 {
		t.Errorf("deadline_capped_total = %v, want >= 1", got)
	}
}
