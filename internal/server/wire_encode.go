package server

// Hand-rolled envelope encoders for the two enumeration responses,
// byte-identical to encoding/json (pinned by property tests against
// json.Marshal) but cancellation-aware: a huge marshal polls the
// request context every few hundred rows, so a response whose walk
// finished just under the deadline cannot blow past it inside the
// encoder — the bug where a 384k-point body kept marshaling long after
// the coordinator had given up on it. The row bytes come from
// internal/stream's single-pass encoder, the same one the streamed
// paths ship, which is what makes streamed and buffered output
// byte-comparable row for row.

import (
	"context"
	"strconv"
	"sync"

	"heteromix/internal/stream"
)

// wireBufPool recycles envelope buffers; enumeration bodies routinely
// reach tens of KB, so the buffers grow once and are reused.
var wireBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// encodeCheckEvery is how many rows the envelope encoders emit between
// context polls: frequent enough that encoding can overshoot a deadline
// by at most a few microseconds of appends, rare enough to be free.
const encodeCheckEvery = 0x1ff

// encodeEnumerateResponse marshals resp exactly as json.Marshal would,
// polling ctx between row batches.
func encodeEnumerateResponse(ctx context.Context, resp *EnumerateResponse) ([]byte, error) {
	bp := wireBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"workload":`...)
	b = stream.AppendString(b, resp.Workload)
	b = append(b, `,"work":`...)
	b = stream.AppendFloat(b, resp.Work)
	b = append(b, `,"space_size":`...)
	b = strconv.AppendInt(b, int64(resp.SpaceSize), 10)
	b = append(b, `,"returned":`...)
	b = strconv.AppendInt(b, int64(resp.Returned), 10)
	if resp.Truncated {
		b = append(b, `,"truncated":true`...)
	}
	if resp.FrontierOnly {
		b = append(b, `,"frontier_only":true`...)
	}
	b = append(b, `,"points":`...)
	if resp.Points == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range resp.Points {
			if i&encodeCheckEvery == encodeCheckEvery && ctx.Err() != nil {
				*bp = b[:0]
				wireBufPool.Put(bp)
				return nil, ctx.Err()
			}
			if i > 0 {
				b = append(b, ',')
			}
			b = stream.AppendPointSummary(b, &resp.Points[i])
		}
		b = append(b, ']')
	}
	if resp.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	b = append(b, '}')
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b[:0]
	wireBufPool.Put(bp)
	return out, nil
}

// encodeGenericResponse marshals resp exactly as json.Marshal would,
// polling ctx between row batches.
func encodeGenericResponse(ctx context.Context, resp *EnumerateGenericResponse) ([]byte, error) {
	bp := wireBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"workload":`...)
	b = stream.AppendString(b, resp.Workload)
	b = append(b, `,"work":`...)
	b = stream.AppendFloat(b, resp.Work)
	b = append(b, `,"type_names":`...)
	if resp.TypeNames == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, n := range resp.TypeNames {
			if i > 0 {
				b = append(b, ',')
			}
			b = stream.AppendString(b, n)
		}
		b = append(b, ']')
	}
	b = append(b, `,"space_size":`...)
	b = strconv.AppendUint(b, resp.SpaceSize, 10)
	if resp.PrunedSize != 0 {
		b = append(b, `,"pruned_size":`...)
		b = strconv.AppendUint(b, resp.PrunedSize, 10)
	}
	b = append(b, `,"returned":`...)
	b = strconv.AppendInt(b, int64(resp.Returned), 10)
	if resp.Truncated {
		b = append(b, `,"truncated":true`...)
	}
	if resp.FrontierOnly {
		b = append(b, `,"frontier_only":true`...)
	}
	b = append(b, `,"points":`...)
	if resp.Points == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range resp.Points {
			if i&encodeCheckEvery == encodeCheckEvery && ctx.Err() != nil {
				*bp = b[:0]
				wireBufPool.Put(bp)
				return nil, ctx.Err()
			}
			if i > 0 {
				b = append(b, ',')
			}
			b = stream.AppendGenericPointSummary(b, &resp.Points[i])
		}
		b = append(b, ']')
	}
	if resp.Shard != "" {
		b = append(b, `,"shard":`...)
		b = stream.AppendString(b, resp.Shard)
	}
	if len(resp.Indices) != 0 {
		b = append(b, `,"indices":[`...)
		for i, idx := range resp.Indices {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, idx, 10)
		}
		b = append(b, ']')
	}
	if len(resp.FailedShards) != 0 {
		b = append(b, `,"failed_shards":[`...)
		for i, fs := range resp.FailedShards {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(fs), 10)
		}
		b = append(b, ']')
	}
	if resp.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	b = append(b, '}')
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b[:0]
	wireBufPool.Put(bp)
	return out, nil
}
