package server

// Pooled gzip for the large response paths. Buffered enumeration
// bodies compress at write time — the cache keeps the uncompressed
// bytes, so one cached entry serves both encodings — and streamed
// responses interpose the same pooled writer between the chunk buffer
// and the connection, flushing a gzip frame at every chunk boundary so
// compression never re-buffers the stream.

import (
	"compress/gzip"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// gzipMinBytes is the smallest buffered body worth compressing: below
// this the header overhead and writer reset cost more than the wire
// bytes saved.
const gzipMinBytes = 1 << 10

// gzipPool recycles gzip writers (their window and huffman state is
// ~256KB per writer, the dominant cost of cold construction).
var gzipPool = sync.Pool{New: func() any {
	zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
	return zw
}}

func gzipGet(dst io.Writer) *gzip.Writer {
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(dst)
	return zw
}

func gzipPut(zw *gzip.Writer) {
	zw.Reset(io.Discard)
	gzipPool.Put(zw)
}

// acceptsGzip parses Accept-Encoding properly enough to honor q-values:
// "gzip;q=0" is a refusal, not an acceptance, and a bare "*" admits it.
// Anything unparseable is treated as not accepting — the uncompressed
// response is always correct.
func acceptsGzip(r *http.Request) bool {
	accept := false
	for _, field := range r.Header.Values("Accept-Encoding") {
		for _, part := range strings.Split(field, ",") {
			name, params, _ := strings.Cut(strings.TrimSpace(part), ";")
			name = strings.ToLower(strings.TrimSpace(name))
			if name != "gzip" && name != "*" {
				continue
			}
			q := 1.0
			for _, p := range strings.Split(params, ";") {
				k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
				if ok && strings.EqualFold(strings.TrimSpace(k), "q") {
					if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
						q = f
					}
				}
			}
			if name == "gzip" {
				// An explicit gzip entry wins over any wildcard.
				return q > 0
			}
			accept = q > 0
		}
	}
	return accept
}

// writeBody is writeRaw for the enumeration endpoints, whose bodies
// are the ones large enough to be worth compressing: a client that
// accepts gzip and a body past the threshold get a pooled compress at
// write time; everyone else gets the raw bytes.
func (s *Server) writeBody(w http.ResponseWriter, r *http.Request, body []byte, cached bool) {
	h := w.Header()
	h.Add("Vary", "Accept-Encoding")
	if len(body) < gzipMinBytes || !acceptsGzip(r) {
		writeRaw(w, body, cached)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Encoding", "gzip")
	if cached {
		h.Set("X-Cache", "hit")
	} else {
		h.Set("X-Cache", "miss")
	}
	zw := gzipGet(w)
	zw.Write(body)
	zw.Close()
	gzipPut(zw)
}
