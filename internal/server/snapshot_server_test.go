package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heteromix/internal/snapshot"
)

const (
	snapPredictBody = `{"workload":"ep","arm":{"nodes":2},"amd":{"nodes":1}}`
	snapGenericBody = `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2},{"node":"amd-opteron-k10","max_nodes":1}],"frontier_only":true}`
)

// warmSnapshotServer serves one predict and one generic enumeration so
// both caches hold entries, then returns the server.
func warmSnapshotServer(t testing.TB, opts Options) *Server {
	t.Helper()
	s := newTestServer(t, opts)
	for _, req := range []struct{ path, body string }{
		{"/v1/predict", snapPredictBody},
		{"/v1/enumerate-generic", snapGenericBody},
	} {
		if rr := post(t, s, req.path, req.body); rr.Code != http.StatusOK {
			t.Fatalf("warming %s: status %d: %s", req.path, rr.Code, rr.Body)
		}
	}
	return s
}

// writeWarmSnapshot persists a warm server's snapshot to a temp file.
func writeWarmSnapshot(t testing.TB, s *Server) (path string, snap *snapshot.Snapshot) {
	t.Helper()
	snap = s.BuildSnapshot()
	path = filepath.Join(t.TempDir(), "cache.snap")
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	return path, snap
}

// TestPreheatServesFirstRequestsWithZeroTableBuilds is the headline
// acceptance: a server preheated from a warm sibling's snapshot serves
// its first /v1/predict and first warm-spec /v1/enumerate-generic
// without building a single kernel table — and without even a table
// cache miss.
func TestPreheatServesFirstRequestsWithZeroTableBuilds(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	path, snap := writeWarmSnapshot(t, a)
	if len(snap.Tables) == 0 || len(snap.Generic) == 0 || len(snap.Results) < 2 {
		t.Fatalf("warm snapshot too thin: %d tables, %d generic, %d results",
			len(snap.Tables), len(snap.Generic), len(snap.Results))
	}

	b := newTestServer(t, Options{SnapshotPath: path})
	if got := b.snapshotLoads.Value(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	if rr := post(t, b, "/v1/predict", snapPredictBody); rr.Code != http.StatusOK {
		t.Fatalf("preheated predict: status %d: %s", rr.Code, rr.Body)
	} else if rr.Header().Get("X-Cache") != "hit" {
		t.Errorf("preheated first predict X-Cache = %q, want hit", rr.Header().Get("X-Cache"))
	}
	if rr := post(t, b, "/v1/enumerate-generic", snapGenericBody); rr.Code != http.StatusOK {
		t.Fatalf("preheated generic: status %d: %s", rr.Code, rr.Body)
	} else if rr.Header().Get("X-Cache") != "hit" {
		t.Errorf("preheated first generic X-Cache = %q, want hit", rr.Header().Get("X-Cache"))
	}
	// A fresh work size misses the result cache but must still hit the
	// preheated table — proving the table preheat independently of the
	// result preheat.
	if rr := post(t, b, "/v1/predict", `{"workload":"ep","arm":{"nodes":2},"amd":{"nodes":1},"work":1e6}`); rr.Code != http.StatusOK {
		t.Fatalf("fresh-work predict: status %d: %s", rr.Code, rr.Body)
	} else if rr.Header().Get("X-Cache") != "miss" {
		t.Errorf("fresh-work predict X-Cache = %q, want miss", rr.Header().Get("X-Cache"))
	}
	if builds := b.TableBuilds(); builds != 0 {
		t.Errorf("table builds after preheated serving = %d, want 0", builds)
	}
	if misses := b.TableCacheStats().Misses; misses != 0 {
		t.Errorf("table cache misses after preheated serving = %d, want 0", misses)
	}
}

// TestPreheatRespectsResultByteLimit: an oversized snapshot loads only
// the hottest prefix that fits the configured byte budget, and the
// hottest entry always survives.
func TestPreheatRespectsResultByteLimit(t *testing.T) {
	a := newTestServer(t, Options{})
	var total int64
	for i := 1; i <= 24; i++ {
		body := fmt.Sprintf(`{"workload":"ep","arm":{"nodes":2},"amd":{"nodes":1},"work":%d}`, i*100000)
		if rr := post(t, a, "/v1/predict", body); rr.Code != http.StatusOK {
			t.Fatalf("warming %d: status %d: %s", i, rr.Code, rr.Body)
		}
	}
	snap := a.BuildSnapshot()
	for _, e := range snap.Results {
		total += int64(len(e.Body))
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Options{SnapshotPath: path, CacheMaxBytes: total / 3})
	entries := b.CacheStats().Entries
	if entries == 0 {
		t.Fatal("byte-limited preheat loaded nothing")
	}
	if entries >= len(snap.Results) {
		t.Fatalf("byte-limited preheat loaded all %d results under a 1/3 budget", entries)
	}
	if _, ok := b.cache.Get(snap.Results[0].Key); !ok {
		t.Error("hottest result did not survive the byte-limited preheat")
	}
}

// TestPreheatRespectsTableByteLimit: with a table-cache byte budget
// sized for one artifact, only the hottest table loads.
func TestPreheatRespectsTableByteLimit(t *testing.T) {
	a := newTestServer(t, Options{})
	for _, w := range []string{"ep", "memcached"} {
		body := fmt.Sprintf(`{"workload":%q,"arm":{"nodes":2},"amd":{"nodes":1}}`, w)
		if rr := post(t, a, "/v1/predict", body); rr.Code != http.StatusOK {
			t.Fatalf("warming %s: status %d: %s", w, rr.Code, rr.Body)
		}
	}
	snap := a.BuildSnapshot()
	if len(snap.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(snap.Tables))
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	// Budget exactly one artifact: the hottest (memcached, served last).
	hottest, ok := a.tables.Get("table|memcached@v1|false")
	if !ok {
		t.Fatal("hottest table missing from donor cache")
	}
	b := newTestServer(t, Options{
		SnapshotPath:       path,
		TableCacheMaxBytes: int64(hottest.SizeBytes()),
	})
	st := b.TableCacheStats()
	if st.Entries != 1 {
		t.Fatalf("table cache entries = %d, want 1 (hottest prefix only)", st.Entries)
	}
	if _, ok := b.tables.Get("table|memcached@v1|false"); !ok {
		t.Error("hottest table did not survive the byte-limited preheat")
	}
}

// TestProfileBumpRetiresPreheatedEntries: a /v1/fit-style profile bump
// after preheat makes every preheated key unreachable by construction —
// the new version tag mints different keys, so the next request
// recomputes under the new profile.
func TestProfileBumpRetiresPreheatedEntries(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	path, snap := writeWarmSnapshot(t, a)
	b := newTestServer(t, Options{SnapshotPath: path})

	if _, err := b.calib.Install("ep", "arm-cortex-a9", perturbedModel(t, "ep", "arm-cortex-a9", 1.2), "test"); err != nil {
		t.Fatal(err)
	}
	rr := post(t, b, "/v1/predict", snapPredictBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("post-bump predict: status %d: %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("post-bump predict X-Cache = %q, want miss", got)
	}
	if builds := b.TableBuilds(); builds != 1 {
		t.Errorf("post-bump table builds = %d, want 1 (rebuilt under the new version)", builds)
	}
	// The bump's invalidation sweep also reclaims the preheated bodies.
	if _, ok := b.cache.Get(snap.Results[0].Key); ok {
		t.Error("preheated result still resident after the profile bump sweep")
	}
}

// TestSnapshotRoundTripBitIdentical: a preheated server's own snapshot
// re-encodes bit-identically to the donor's (timestamps normalized) —
// decode(encode(caches)) lost nothing, reordered nothing.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	if rr := post(t, a, "/v1/enumerate", `{"workload":"ep","max_arm":2,"max_amd":2,"frontier_only":true}`); rr.Code != http.StatusOK {
		t.Fatalf("warming enumerate: status %d: %s", rr.Code, rr.Body)
	}
	path, snapA := writeWarmSnapshot(t, a)
	b := newTestServer(t, Options{SnapshotPath: path})
	snapB := b.BuildSnapshot()

	snapA.Meta.CreatedUnixNano = 0
	snapB.Meta.CreatedUnixNano = 0
	if !bytes.Equal(snapshot.Encode(snapA), snapshot.Encode(snapB)) {
		t.Fatalf("re-harvested snapshot is not bit-identical:\n donor: %d tables %d generic %d results\nloaded: %d tables %d generic %d results",
			len(snapA.Tables), len(snapA.Generic), len(snapA.Results),
			len(snapB.Tables), len(snapB.Generic), len(snapB.Results))
	}
}

// TestSnapshotEndpoint: GET /v1/snapshot serves a decodable snapshot,
// and answers 409 to a requester with divergent profile state instead
// of shipping entries it could never validate.
func TestSnapshotEndpoint(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	rr := get(t, a, "/v1/snapshot")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	snap, err := snapshot.DecodeLimited(rr.Body.Bytes(), 0)
	if err != nil {
		t.Fatalf("served snapshot does not decode: %v", err)
	}
	if len(snap.Tables) == 0 || len(snap.Results) == 0 {
		t.Fatalf("served snapshot is empty: %d tables, %d results", len(snap.Tables), len(snap.Results))
	}
	if got := rr.Header().Get("X-Profile-Hash"); got != snap.Meta.ProfileHash {
		t.Errorf("X-Profile-Hash %q, want %q", got, snap.Meta.ProfileHash)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/snapshot", nil)
	req.Header.Set(profileHashHeader, "divergent-hash")
	rr2 := httptest.NewRecorder()
	a.Handler().ServeHTTP(rr2, req)
	if rr2.Code != http.StatusConflict {
		t.Fatalf("divergent hash: status %d, want 409", rr2.Code)
	}
}

// TestWarmFromPeer: a cold replica pulls a warm sibling's snapshot and
// then serves with zero table builds; a sibling under divergent
// profiles refuses with 409 and the cold caches stay untouched.
func TestWarmFromPeer(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	b := newTestServer(t, Options{Replicas: []string{srv.URL}, ProbeInterval: time.Hour})
	if err := b.WarmFromPeer(ctx, srv.URL); err != nil {
		t.Fatal(err)
	}
	if rr := post(t, b, "/v1/predict", snapPredictBody); rr.Code != http.StatusOK {
		t.Fatalf("warmed predict: status %d: %s", rr.Code, rr.Body)
	} else if rr.Header().Get("X-Cache") != "hit" {
		t.Errorf("warmed predict X-Cache = %q, want hit", rr.Header().Get("X-Cache"))
	}
	if builds := b.TableBuilds(); builds != 0 {
		t.Errorf("table builds after peer warm = %d, want 0", builds)
	}

	// Diverge the donor's profile state: the pull must be refused and
	// nothing may load.
	if _, err := a.calib.Install("ep", "arm-cortex-a9", perturbedModel(t, "ep", "arm-cortex-a9", 1.3), "test"); err != nil {
		t.Fatal(err)
	}
	c := newTestServer(t, Options{Replicas: []string{srv.URL}, ProbeInterval: time.Hour})
	err := c.WarmFromPeer(ctx, srv.URL)
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("divergent peer warm error = %v, want a refusal", err)
	}
	if got := c.CacheStats().Entries; got != 0 {
		t.Errorf("refused warm left %d cache entries", got)
	}
	if got := c.snapshotRejects.Value(); got != 1 {
		t.Errorf("snapshot rejects = %d, want 1", got)
	}
}

// TestPeerWarmAutomatic: with PeerWarm set, the startup watcher pulls
// from the first sibling the prober sees healthy — no manual trigger.
func TestPeerWarmAutomatic(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	b := newTestServer(t, Options{
		Replicas:      []string{srv.URL},
		PeerWarm:      true,
		ProbeInterval: 20 * time.Millisecond,
	})
	deadline := time.Now().Add(10 * time.Second)
	for b.snapshotLoads.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer warm never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if builds := b.TableBuilds(); builds != 0 {
		t.Errorf("table builds after automatic peer warm = %d, want 0", builds)
	}
	if rr := post(t, b, "/v1/predict", snapPredictBody); rr.Code != http.StatusOK {
		t.Fatalf("warmed predict: status %d: %s", rr.Code, rr.Body)
	}
}

// TestSnapshotWriterSavesOnClose: a server with a snapshot path and
// interval persists its warmth on shutdown; the file round-trips.
func TestSnapshotWriterSavesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	a := warmSnapshotServer(t, Options{SnapshotPath: path, SnapshotInterval: time.Hour})
	a.Close()
	if got := a.snapshotSaves.Value(); got != 1 {
		t.Fatalf("snapshot saves = %d, want 1 (final save on Close)", got)
	}
	snap, err := snapshot.ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Tables) == 0 || len(snap.Generic) == 0 || len(snap.Results) == 0 {
		t.Fatalf("persisted snapshot is thin: %d tables, %d generic, %d results",
			len(snap.Tables), len(snap.Generic), len(snap.Results))
	}
}

// TestHealthzReportsSnapshot: /healthz carries the snapshot section
// after a preheat — hash, entry counts and the load total.
func TestHealthzReportsSnapshot(t *testing.T) {
	a := warmSnapshotServer(t, Options{})
	path, snap := writeWarmSnapshot(t, a)
	b := newTestServer(t, Options{SnapshotPath: path})

	hr := decodeBody[HealthResponse](t, get(t, b, "/healthz"))
	if hr.Snapshot == nil {
		t.Fatal("healthz lacks the snapshot section after preheat")
	}
	if hr.Snapshot.FileHash != snap.FileHash {
		t.Errorf("healthz snapshot hash %q, want %q", hr.Snapshot.FileHash, snap.FileHash)
	}
	if hr.Snapshot.Loads != 1 || hr.Snapshot.Tables == 0 || hr.Snapshot.Results == 0 {
		t.Errorf("healthz snapshot section %+v", hr.Snapshot)
	}
	// A cold server omits the section entirely.
	cold := decodeBody[HealthResponse](t, get(t, newTestServer(t, Options{}), "/healthz"))
	if cold.Snapshot != nil {
		t.Errorf("cold healthz carries a snapshot section: %+v", cold.Snapshot)
	}
}
