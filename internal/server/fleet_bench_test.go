package server

// Benchmarks and the CI gate for fleet-mode scatter-gather: a cold
// frontier-only enumeration of the canonical tri-cluster space (4 nodes
// per type, 384,344 configurations — the same space bench-generic
// walks) fanned out over 4 replica shards versus the same coordinator
// path with a single shard. `make bench-fleet` runs both plus
// TestFleetColdSpeedupGate, which enforces the ≥3x cold-walk speedup on
// hosts with ≥4 CPUs (the fan-out is CPU-bound; on smaller hosts the
// gate skips and the benchmarks still record honest numbers).

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// fleetBenchBody shards the 384,344-point tri-cluster frontier request.
func fleetBenchBody(shards int) string {
	return fmt.Sprintf(`{"workload":"ep","types":[`+
		`{"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},`+
		`{"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},`+
		`{"node":"amd-opteron-k10","max_nodes":4}],`+
		`"frontier_only":true,"shards":%d}`, shards)
}

// chillFleet evicts every result-cache entry across the fleet so the
// next request walks the space again. Compiled kernel tables stay warm:
// the benchmarks isolate the enumeration walk, not table compilation.
func chillFleet(f *testFleet) {
	f.coord.cache.Reset()
	for _, rs := range f.replicas {
		rs.cache.Reset()
	}
}

// coldFleetRequest runs one cache-cold fan-out and reports its wall
// time.
func coldFleetRequest(tb testing.TB, f *testFleet, body string) time.Duration {
	tb.Helper()
	chillFleet(f)
	start := time.Now()
	rr := post(tb, f.coord, "/v1/enumerate-generic", body)
	elapsed := time.Since(start)
	if rr.Code != http.StatusOK {
		tb.Fatalf("fleet enumerate: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Cache") != "miss" {
		tb.Fatalf("cold request served from cache")
	}
	return elapsed
}

func benchFleetEnumerate(b *testing.B, shards int) {
	f := newFleet(b, 4, Options{}, Options{})
	body := fleetBenchBody(shards)
	// One warm-up request compiles the kernel tables everywhere.
	if rr := post(b, f.coord, "/v1/enumerate-generic", body); rr.Code != http.StatusOK {
		b.Fatalf("warm-up: %d %s", rr.Code, rr.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		chillFleet(f)
		b.StartTimer()
		if rr := post(b, f.coord, "/v1/enumerate-generic", body); rr.Code != http.StatusOK {
			b.Fatalf("fleet enumerate: %d %s", rr.Code, rr.Body)
		}
	}
}

func BenchmarkFleetEnumerate1Shard(b *testing.B) { benchFleetEnumerate(b, 1) }

func BenchmarkFleetEnumerate4Shards(b *testing.B) { benchFleetEnumerate(b, 4) }

// TestFleetColdSpeedupGate is the bench-fleet CI gate: a cold 4-shard
// fan-out of the tri-cluster frontier must beat the single-shard
// coordinator path by ≥3x. Only meaningful where the four shard walks
// can actually run in parallel, so it skips below 4 CPUs; and it only
// runs under `make bench-fleet` (HETEROMIX_FLEET_GATE=1) so plain
// `go test ./...` stays fast.
func TestFleetColdSpeedupGate(t *testing.T) {
	if os.Getenv("HETEROMIX_FLEET_GATE") != "1" {
		t.Skip("set HETEROMIX_FLEET_GATE=1 (make bench-fleet) to run the speedup gate")
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Skipf("GOMAXPROCS=%d: the 4-shard walk cannot parallelize below 4 CPUs", procs)
	}
	f := newFleet(t, 4, Options{}, Options{})
	for _, shards := range []int{1, 4} { // warm the kernel tables
		if rr := post(t, f.coord, "/v1/enumerate-generic", fleetBenchBody(shards)); rr.Code != http.StatusOK {
			t.Fatalf("warm-up shards=%d: %d %s", shards, rr.Code, rr.Body)
		}
	}
	best := func(shards int) time.Duration {
		body := fleetBenchBody(shards)
		min := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			if d := coldFleetRequest(t, f, body); d < min {
				min = d
			}
		}
		return min
	}
	serial := best(1)
	sharded := best(4)
	ratio := float64(serial) / float64(sharded)
	t.Logf("cold 1-shard %v, cold 4-shard %v: %.2fx", serial, sharded, ratio)
	if ratio < 3.0 {
		t.Fatalf("cold 4-shard speedup %.2fx < 3.0x gate (1-shard %v, 4-shard %v)",
			ratio, serial, sharded)
	}
}

// The hedged-tail benchmarks: the same cold 4-shard fan-out with shard
// 0's primary replica stalling every request by 25 ms (a revived
// replica with cold caches, say). With hedging on, the coordinator
// hedges the stalled shard to its ring successor after the observed
// shard-latency quantile and the fan-out finishes near the healthy
// shards' pace; with hedging off it eats the stall. The gap between the
// two ns/op numbers is the tail-latency win recorded in
// BENCH_serving.json.
func BenchmarkFleetSlowReplicaHedged(b *testing.B)  { benchFleetSlowReplica(b, false) }
func BenchmarkFleetSlowReplicaNoHedge(b *testing.B) { benchFleetSlowReplica(b, true) }

func benchFleetSlowReplica(b *testing.B, disableHedge bool) {
	const stall = 25 * time.Millisecond
	f := newFleet(b, 4, Options{DisableHedge: disableHedge}, Options{})
	body := fleetBenchBody(4)
	// Warm-up compiles the kernel tables everywhere and seeds the
	// shard-latency histogram the hedge delay is derived from.
	for i := 0; i < 3; i++ {
		chillFleet(f)
		if rr := post(b, f.coord, "/v1/enumerate-generic", body); rr.Code != http.StatusOK {
			b.Fatalf("warm-up: %d %s", rr.Code, rr.Body)
		}
	}
	f.chaos[f.primaryOf(b, 0)].SlowStart(stall)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		chillFleet(f)
		b.StartTimer()
		if rr := post(b, f.coord, "/v1/enumerate-generic", body); rr.Code != http.StatusOK {
			b.Fatalf("fleet enumerate: %d %s", rr.Code, rr.Body)
		}
	}
}
