package server

// Benchmarks for the predict hot path. The cached benchmark is the
// make ci gate: one canonical-key marshal plus a sharded-LRU hit
// returning pre-marshaled bytes, so a warm daemon answers thousands of
// predictions per core-millisecond without rebuilding anything. The
// cold benchmark clears the cache every iteration and so pays the
// kernel-table build, the evaluation and the response marshal — the
// gap between the two is what the cache buys.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchServer(b *testing.B) (*Server, PredictRequest) {
	s, err := New(Options{Models: testSuite()})
	if err != nil {
		b.Fatal(err)
	}
	norm, _, err := s.normalizePredict(PredictRequest{
		Workload: "ep",
		ARM:      GroupRequest{Nodes: 8},
		AMD:      GroupRequest{Nodes: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	return s, norm
}

func BenchmarkServePredictCached(b *testing.B) {
	s, norm := benchServer(b)
	_, cfg, err := s.normalizePredict(norm)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := s.predictBytes(norm, cfg); err != nil { // prewarm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, cached, err := s.predictBytes(norm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !cached || len(body) == 0 {
			b.Fatal("cached path missed")
		}
	}
}

func BenchmarkServePredictCold(b *testing.B) {
	s, norm := benchServer(b)
	_, cfg, err := s.normalizePredict(norm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.cache.Reset()
		if _, _, err := s.predictBytes(norm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePredictEndToEnd measures the whole routed request —
// decode, validate, canonicalize, cache hit, write — as a client sees
// it (minus the network).
func BenchmarkServePredictEndToEnd(b *testing.B) {
	s, _ := benchServer(b)
	const body = `{"workload":"ep","arm":{"nodes":8},"amd":{"nodes":4}}`
	h := s.Handler()
	// Prewarm.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d", rr.Code)
		}
	}
}
