package server

// Fuzzes the JSON decode/validate layer of every POST endpoint with one
// shared server. The property under test is the error contract: no
// body — malformed JSON, unknown fields, NaN/Inf/negative work,
// out-of-range node counts, junk trailing data, oversized payloads —
// may ever produce a 5xx or a panic; bad input is always a 4xx (400,
// or 413 for oversized bodies) with a JSON error body.
// Seed inputs covering each rejection class are checked in under
// testdata/fuzz/FuzzHandlersRejectBadInput.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

// fuzzServer keeps bounds small so adversarial but valid requests stay
// cheap; one server is shared across the whole fuzz process, which also
// exercises the cache under a hostile request mix.
func fuzzServer(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		s, err := New(Options{
			Models:       testSuite(),
			MaxNodes:     12,
			MaxPoints:    500,
			MaxBodyBytes: 4096,
			// Small enough that the priciest admitted generic request stays
			// cheap under a hostile mutation mix.
			MaxGenericSpace: 200_000,
			// Small enough that the oversized-batch seed fits MaxBodyBytes.
			MaxBatchItems: 8,
			// Small enough that the oversized-fit seed fits MaxBodyBytes,
			// and that a mutation stream of valid samples cannot grow the
			// per-pair stores without bound.
			MaxFitBatch: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv
}

func FuzzHandlersRejectBadInput(f *testing.F) {
	seeds := []string{
		// Valid baselines so mutations explore the accept/reject border.
		`{"workload":"ep","arm":{"nodes":2},"amd":{"nodes":1}}`,
		`{"workload":"memcached","max_arm":3,"max_amd":2,"frontier_only":true}`,
		`{"workload":"ep","budget_watts":200}`,
		`{"arrival_rate":0.5,"service_time_seconds":1,"scv":0.5}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2,"needs_switch":true},{"node":"amd-opteron-k10","max_nodes":2}],"frontier_only":true}`,
		// Generic rejection classes: unknown node, negative bound, a space
		// past the size guard, an empty and an oversized type list.
		`{"workload":"ep","types":[{"node":"intel-xeon","max_nodes":2}]}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":-1}]}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":12},{"node":"arm-cortex-a15","max_nodes":12},{"node":"amd-opteron-k10","max_nodes":12}]}`,
		`{"workload":"ep","types":[]}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1},{"node":"arm-cortex-a9","max_nodes":1}]}`,
		// Fleet/shard surface: a valid replica-slice request, malformed
		// and out-of-range shard specs, shard without frontier_only,
		// shard+shards together, negative/oversized shard counts, and
		// fleet fields on this server (which has no -replicas, so every
		// fan-out spelling must be a fast 400, never an outbound call).
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shard":"0/4"}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shard":"x/y"}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shard":"3/2"}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"shard":"0/2"}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shard":"0/2","shards":2}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shards":4}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shards":-1}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shards":65}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shards":4,"replicas":["not-a-url"]}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"replicas":["http://127.0.0.1:1"]}`,
		// Rejection classes named in the contract.
		`{"workload":"ep","arm":{"nodes":1},"work":NaN}`,
		`{"workload":"ep","arm":{"nodes":1},"work":-1}`,
		`{"workload":"ep","arm":{"nodes":1},"work":1e999}`,
		`{"workload":"ep","arm":{"nodes":9999}}`,
		`{"workload":"ep","arm":{"nodes":-3}}`,
		`{"workload":"ep","unknown_field":true}`,
		`{"workload":"ep","arm":{"nodes":1}} trailing`,
		`{"arrival_rate":2,"service_time_seconds":1}`,
		``,
		`null`,
		`[]`,
		`{`,
		// Oversized body: must answer 413, never a 5xx (the fuzz server
		// caps bodies at 4096 bytes).
		`{"workload":"ep","pad":"` + strings.Repeat("A", 8192) + `"}`,
		// Batch envelopes: a valid heterogeneous batch, a batch whose bad
		// item must answer a per-item error (batch 200), an unknown kind,
		// an empty items list, and a batch past MaxBatchItems — the size
		// guard must 400 before any item runs.
		`{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},{"kind":"queueing","request":{"arrival_rate":0.5,"service_time_seconds":1}}]}`,
		`{"items":[{"kind":"predict","request":{"workload":"nope"}},{"kind":"budget","request":{"budget_watts":-1}}]}`,
		`{"items":[{"kind":"transmogrify","request":{}}]}`,
		`{"items":[{"kind":"predict"}]}`,
		`{"items":[]}`,
		`{"items":[` + strings.Repeat(`{"kind":"queueing","request":{"arrival_rate":0.5,"service_time_seconds":1}},`, 8) +
			`{"kind":"queueing","request":{"arrival_rate":0.5,"service_time_seconds":1}}]}`,
		// Calibration surface: a valid fit batch (mutations explore the
		// accept/reject border, and accepted samples may legitimately
		// trigger refits mid-fuzz — the contract must hold across bumps),
		// then each rejection class: unknown workload/node, empty and
		// oversized sample lists, non-finite/negative/overflowing
		// measurements, an off-lattice config, and a version-pinned
		// request whose 409 must never decay into a 5xx.
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"cores":1,"ghz":0.8,"time_seconds":2.5,"energy_joules":40}]}`,
		`{"workload":"nope","node":"arm-cortex-a9","samples":[{"time_seconds":1,"energy_joules":1}]}`,
		`{"workload":"ep","node":"intel-xeon","samples":[{"time_seconds":1,"energy_joules":1}]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":1,"energy_joules":1},{"time_seconds":1,"energy_joules":1},{"time_seconds":1,"energy_joules":1},{"time_seconds":1,"energy_joules":1},{"time_seconds":1,"energy_joules":1}]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":NaN,"energy_joules":1}]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":-1,"energy_joules":1}]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"time_seconds":1,"energy_joules":1e999}]}`,
		`{"workload":"ep","node":"arm-cortex-a9","samples":[{"cores":99,"ghz":7.7,"time_seconds":1,"energy_joules":1}]}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"profile_version":99}`,
		// Delta requests: buffered delta (400 — needs a stream), delta
		// without frontier_only, delta on a shard slice, and the valid
		// spelling (still 400 here, the fuzz POSTs are unnegotiated).
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"delta":true}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"delta":true}`,
		`{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true,"shard":"0/2","delta":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	endpoints := []string{"/v1/predict", "/v1/enumerate", "/v1/enumerate-generic", "/v1/budget", "/v1/queueing", "/v1/batch", "/v1/fit"}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzServer(t)
		for _, ep := range endpoints {
			req := httptest.NewRequest(http.MethodPost, ep, strings.NewReader(string(body)))
			rr := httptest.NewRecorder()
			s.Handler().ServeHTTP(rr, req)
			if rr.Code >= 500 {
				t.Fatalf("%s answered %d for body %q: %s", ep, rr.Code, body, rr.Body)
			}
			if rr.Code == http.StatusBadRequest {
				var e errorResponse
				if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
					t.Fatalf("%s: 400 without a JSON error body for %q: %s", ep, body, rr.Body)
				}
			}
		}
	})
}

// FuzzDeadlineHeader holds the 400-never-5xx contract on the
// X-Deadline-Ms header: whatever a (possibly buggy) coordinator stamps,
// a replica answers 200 for a valid deadline, 400 with a JSON error
// body for a malformed one — never a 5xx, never a panic. Seed inputs
// covering the rejection classes are checked in under
// testdata/fuzz/FuzzDeadlineHeader.
func FuzzDeadlineHeader(f *testing.F) {
	seeds := []string{
		"5000", "1", "3600000", // valid range
		"0", "-1", "3600001", // out of range
		"1.5", " 7", "+12", "0x10", // not a plain decimal integer
		"99999999999999999999",     // overflows int64
		"abc", "", "∞", "12\x0034", // garbage
	}
	for _, s := range seeds {
		f.Add(s)
	}
	body := `{"workload":"ep","arm":{"nodes":1}}`
	f.Fuzz(func(t *testing.T, header string) {
		s := fuzzServer(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		// http.Header values must be valid per RFC 7230; NewRequest would
		// not reject control bytes, but the transport never delivers them,
		// so strip what a real server could not have received.
		req.Header.Set("X-Deadline-Ms", sanitizeHeaderValue(header))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code >= 500 {
			t.Fatalf("X-Deadline-Ms %q answered %d: %s", header, rr.Code, rr.Body)
		}
		if rr.Code == http.StatusBadRequest {
			var e errorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("400 without a JSON error body for header %q: %s", header, rr.Body)
			}
		}
	})
}

// sanitizeHeaderValue drops bytes a conforming HTTP transport would
// never deliver in a field value (CTLs other than HTAB).
func sanitizeHeaderValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\t' || (c >= 0x20 && c != 0x7f) {
			b.WriteByte(c)
		}
	}
	return b.String()
}
