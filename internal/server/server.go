// Package server is heteromixd's HTTP JSON API: the analytical model as
// a long-lived service instead of a one-shot CLI run. It exposes
//
//	POST /v1/predict    one cluster configuration → time/energy
//	POST /v1/enumerate  a configuration space → points or Pareto frontier
//	POST /v1/budget     power-budget substitution series
//	POST /v1/queueing   M/D/1–M/G/1 wait/energy under job arrivals
//	POST /v1/batch      heterogeneous predict/queueing/budget batch
//	GET  /healthz       build identity, uptime, cache effectiveness
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/vars    expvar
//
// Underneath, a sharded LRU (internal/servercache) memoizes marshaled
// results keyed on canonicalized request hashes, with singleflight
// collapse so a thundering herd of identical enumerations computes each
// space once; a second cache (internal/tablecache) holds compiled
// kernel tables keyed by the cluster spec alone, so every work size and
// deadline against one cluster shares a single compiled artifact. Every
// request runs under a per-request timeout and a configurable
// concurrency limiter (excess load is shed with 503 rather than queued
// without bound), and Run drains in-flight requests on shutdown.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"heteromix/internal/buildinfo"
	"heteromix/internal/calib"
	"heteromix/internal/cluster"
	"heteromix/internal/fleethealth"
	"heteromix/internal/metrics"
	"heteromix/internal/resilience"
	"heteromix/internal/servercache"
	"heteromix/internal/shard"
	"heteromix/internal/tablecache"
)

// ModelSource provides fitted two-type spaces per workload.
// *experiments.Suite implements it.
type ModelSource interface {
	Space(workload string) (cluster.Space, error)
}

// Options configures a Server. The zero value of every field except
// Models selects a sensible default.
type Options struct {
	// Models supplies the fitted models. Required.
	Models ModelSource
	// CacheEntries bounds the result cache (default 4096 entries).
	CacheEntries int
	// TableCacheEntries bounds the compiled kernel-table cache (default
	// tablecache.DefaultCapacity). Unlike the result cache, its keys
	// canonicalize only the cluster spec — never work size, deadline or
	// prune flag — so every request shape against the same cluster shares
	// one compiled artifact.
	TableCacheEntries int
	// MaxConcurrent bounds simultaneously executing /v1/* requests;
	// excess requests receive 503 (default 4×GOMAXPROCS).
	MaxConcurrent int
	// RequestTimeout bounds one request's computation (default 15s).
	RequestTimeout time.Duration
	// ShutdownGrace bounds the drain of in-flight requests when Run's
	// context is cancelled (default 10s).
	ShutdownGrace time.Duration
	// MaxNodes caps per-side node counts in predict/enumerate/budget
	// requests (default 128, the paper's largest scaling mix).
	MaxNodes int
	// MaxPoints caps the number of materialized points one enumerate
	// response may carry (default 20000).
	MaxPoints int
	// MaxGenericSpace caps how many points one /v1/enumerate-generic
	// request may walk after pruning; larger spaces get a 400 before any
	// enumeration runs (default 2,000,000).
	MaxGenericSpace uint64
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps how many items one /v1/batch request may carry;
	// larger batches get a 400 before any item runs (default 256).
	MaxBatchItems int
	// BatchWorkers bounds the worker pool one /v1/batch request fans its
	// items across (default GOMAXPROCS).
	BatchWorkers int
	// Registry receives the server's metrics (default: a fresh one).
	Registry *metrics.Registry
	// CacheTTL bounds how long an enumerate result may serve without a
	// recompute; 0 disables expiry. With a TTL set, a recompute failure
	// serves the expired entry marked "degraded": true instead of an
	// error (see the README's resilience section).
	CacheTTL time.Duration
	// BreakerThreshold and BreakerCooldown tune the circuit breaker on
	// the enumerate compute path (defaults 5 failures, 5s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainDelay is how long Run keeps serving after flipping /readyz to
	// 503 before closing the listener, giving load balancers time to
	// stop routing here (default 0: shut down immediately).
	DrainDelay time.Duration
	// Chaos injects faults into the /v1 endpoints (latency, errors,
	// panics, timeouts). Zero value: no injection. Gated behind the
	// daemon's -chaos flag; never on by default.
	Chaos resilience.ChaosOptions
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profile endpoints expose internals and can run for
	// tens of seconds, so they are opt-in via the daemon's -pprof flag.
	EnablePprof bool
	// Replicas lists fleet replica base URLs ("http://host:port"). With
	// replicas configured, the server coordinates sharded
	// /v1/enumerate-generic fan-out (requests with shards > 0) and, with
	// RouteKey set, routes predict/batch traffic by consistent hash so
	// each replica's compiled-table cache stays hot for the workloads it
	// owns.
	Replicas []string
	// RouteKey selects what predict/batch routing hashes on: "workload",
	// "cluster" (workload + switch accounting), or ""/"none" for no
	// routing. Only meaningful with Replicas.
	RouteKey string
	// DefaultShard, when Count > 0, restricts every frontier-only
	// /v1/enumerate-generic request that does not ask for sharding
	// itself to this replica's slice — how a fleet member started with
	// -shard serves coordination-free.
	DefaultShard shard.Shard
	// ProbeInterval is the fleet health prober's base period (default
	// 2s). Only meaningful with Replicas.
	ProbeInterval time.Duration
	// SuspectAfter and DeadAfter are the consecutive probe-failure
	// counts that demote a replica to suspect (still routable) and
	// declare it dead (shards fail over away), defaults 1 and 3.
	SuspectAfter int
	DeadAfter    int
	// HedgeQuantile selects the shard-latency quantile the coordinator
	// derives its hedge delay from: a shard request still unanswered at
	// that latency gets a second copy sent to the next healthy replica,
	// first success wins (default 0.9; must be in (0, 1)).
	HedgeQuantile float64
	// DisableHedge turns hedged shard fan-out off. Failover on error and
	// health-based shard reassignment still apply.
	DisableHedge bool
	// RefitThreshold is the rolling mean relative prediction error above
	// which /v1/fit ingests trigger an automatic profile refit (default
	// 0.10, i.e. 10%).
	RefitThreshold float64
	// MaxFitSamples bounds each (workload, node) pair's calibration
	// sample store (default 256).
	MaxFitSamples int
	// MaxFitBatch caps how many samples one /v1/fit request may carry
	// (default 256).
	MaxFitBatch int
	// ProfileSnapshot, when set, names the file profiles persist to on
	// every version bump and load from at startup. A missing file is a
	// normal first start; a corrupt or hash-mismatched one fails New.
	ProfileSnapshot string
	// SnapshotPath, when set, names the binary cache snapshot file
	// (internal/snapshot): compiled kernel tables and hot result bodies
	// are preheated from it before the listener opens, so the first
	// request after a restart is a cache hit instead of a table build. A
	// missing file is a normal first start and a snapshot written under
	// other profiles, models or build is skipped (the server starts
	// cold); a corrupt file fails New, like ProfileSnapshot.
	SnapshotPath string
	// SnapshotInterval is the background snapshot writer's period; with
	// SnapshotPath set and a positive interval, the hottest cache entries
	// persist atomically every interval and once more on Close. 0
	// disables the writer (an existing file still preheats).
	SnapshotInterval time.Duration
	// MaxSnapshotBytes caps accepted and served snapshots — the preheat
	// file, GET /v1/snapshot responses and peer-warm pulls (default
	// 64 MiB).
	MaxSnapshotBytes int64
	// PeerWarm pulls a healthy ring sibling's snapshot over
	// GET /v1/snapshot the first time the fleet prober sees one healthy,
	// warming this replica's caches after a cold start or recovery.
	// Requires Replicas.
	PeerWarm bool
	// StreamFlushBytes is the streamed-response chunk boundary: encoded
	// rows accumulate in a pooled buffer and flush to the client when it
	// crosses this many bytes (default 8 KiB).
	StreamFlushBytes int
	// StreamFlushInterval bounds how long a streamed row may sit
	// unflushed regardless of chunk fill, so a slow walk still feeds a
	// live consumer (default 100ms).
	StreamFlushInterval time.Duration
	// CacheMaxBytes bounds the result cache's resident response-body
	// bytes (0 = unlimited; entries still bound it).
	CacheMaxBytes int64
	// TableCacheMaxBytes bounds the compiled kernel-table cache's
	// resident bytes (0 = unlimited; entries still bound it).
	TableCacheMaxBytes int64
}

// endpoints instrumented with per-endpoint counters and latencies.
var endpointNames = []string{"predict", "enumerate", "enumerate-generic", "enumerate-generic-stream", "budget", "queueing", "batch", "fit", "profiles", "snapshot", "healthz", "readyz"}

// chaosKinds labels the chaos-injection counters.
var chaosKinds = []string{"latency", "error", "panic", "timeout"}

// endpointMetrics is one endpoint's instrument set.
type endpointMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// Server implements the API. Construct with New; safe for concurrent
// use.
type Server struct {
	opts   Options
	models ModelSource
	cache  *servercache.Cache
	tables *tablecache.Cache
	reg    *metrics.Registry
	mux    *http.ServeMux
	sem    chan struct{}
	start  time.Time

	// calib versions every profile; all model and cache-key resolution
	// runs through it. genericOK records whether the BASE model source
	// supports per-spec models — the registry always implements
	// NodeModelSource itself, so the capability must be captured before
	// wrapping.
	calib     *calib.Registry
	genericOK bool

	chaos    *resilience.Chaos
	breaker  *resilience.Breaker
	draining atomic.Bool
	fleet    *fleetClient
	ring     *shard.Ring

	// health probes the configured replicas and publishes lock-free
	// ReplicaSet snapshots; shardRing is the consistent-hash ring the
	// fan-out walks for deterministic shard failover. Both are nil
	// without Replicas.
	health    *fleethealth.Prober
	shardRing *shard.Ring

	inflight          *metrics.Gauge
	rejected          *metrics.Counter
	timeouts          *metrics.Counter
	tableBuilds       *metrics.Counter
	cacheHits         *metrics.Counter
	cacheMisses       *metrics.Counter
	cacheCollap       *metrics.Counter
	cacheEvict        *metrics.Counter
	cacheStale        *metrics.Counter
	tcacheHits        *metrics.Counter
	tcacheMisses      *metrics.Counter
	tcacheEvict       *metrics.Counter
	tcacheBytes       *metrics.Gauge
	batchItems        *metrics.Counter
	batchErrors       *metrics.Counter
	panics            *metrics.Counter
	degraded          *metrics.Counter
	genericPoints     *metrics.Counter
	genericPruned     *metrics.Counter
	breakerState      *metrics.Gauge
	breakerOpens      *metrics.Counter
	fleetFanouts      *metrics.Counter
	fleetShardErrors  *metrics.Counter
	fleetBreakerOpens *metrics.Counter
	fleetHedges       *metrics.Counter
	fleetHedgeWins    *metrics.Counter
	fleetFailovers    *metrics.Counter
	fleetShardLatency *metrics.Histogram
	deadlineCapped    *metrics.Counter
	streamRows        *metrics.Counter
	streamFlushes     *metrics.Counter
	streamDisconnects *metrics.Counter
	deltaHits         *metrics.Counter
	deltaMisses       *metrics.Counter
	deltaAdds         *metrics.Counter
	deltaDels         *metrics.Counter
	replicaState      map[string]*metrics.Gauge
	targetBreaker     map[string]*metrics.Gauge
	routedReqs        *metrics.Counter
	routeFallbacks    *metrics.Counter
	calibSamples      *metrics.Counter
	calibRefits       *metrics.Counter
	calibInvalid      *metrics.Counter
	calibSnapErrors   *metrics.Counter
	calibDrift        *metrics.Gauge
	snapshotLoads     *metrics.Counter
	snapshotSaves     *metrics.Counter
	snapshotRejects   *metrics.Counter
	snapshotSaveErrs  *metrics.Counter
	snapshotBytes     *metrics.Gauge
	chaosInject       map[string]*metrics.Counter
	byEndpoint        map[string]*endpointMetrics

	// snapMu guards snapInfo, the last loaded-or-written snapshot's
	// identity reported by /healthz. The writer goroutine (snapStop /
	// snapDone / snapOnce) runs only with SnapshotPath and a positive
	// SnapshotInterval; peerWarmed latches the one-shot peer-warm pull.
	snapMu     sync.Mutex
	snapInfo   snapshotInfo
	snapStop   chan struct{}
	snapDone   chan struct{}
	snapOnce   sync.Once
	peerWarmed atomic.Bool
	warmStop   chan struct{}
	warmDone   chan struct{}
	warmOnce   sync.Once

	mu      sync.Mutex
	httpSrv *http.Server

	// testHookStart, when set (tests only), runs at the start of every
	// instrumented request, after the concurrency slot is acquired.
	testHookStart func(endpoint string)
}

// New builds a Server and registers its routes and metrics.
func New(opts Options) (*Server, error) {
	if opts.Models == nil {
		return nil, fmt.Errorf("server: Options.Models is required")
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 15 * time.Second
	}
	if opts.ShutdownGrace <= 0 {
		opts.ShutdownGrace = 10 * time.Second
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 128
	}
	if opts.MaxPoints <= 0 {
		opts.MaxPoints = 20000
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.MaxGenericSpace == 0 {
		opts.MaxGenericSpace = 2_000_000
	}
	if opts.MaxBatchItems <= 0 {
		opts.MaxBatchItems = 256
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.RefitThreshold <= 0 {
		opts.RefitThreshold = 0.10
	}
	if opts.MaxFitSamples <= 0 {
		opts.MaxFitSamples = 256
	}
	if opts.MaxFitBatch <= 0 {
		opts.MaxFitBatch = 256
	}
	chaos, err := resilience.NewChaos(opts.Chaos)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if len(opts.Replicas) > maxFleetReplicas {
		return nil, fmt.Errorf("server: at most %d replicas, got %d", maxFleetReplicas, len(opts.Replicas))
	}
	for i, u := range opts.Replicas {
		if err := validReplicaURL(u); err != nil {
			return nil, fmt.Errorf("server: replicas[%d]: %v", i, err)
		}
	}
	switch opts.RouteKey {
	case "", "none", "workload", "cluster":
	default:
		return nil, fmt.Errorf("server: route key must be one of workload, cluster, none; got %q", opts.RouteKey)
	}
	if opts.RouteKey != "" && opts.RouteKey != "none" && len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("server: route key %q requires replicas", opts.RouteKey)
	}
	if opts.DefaultShard.Count != 0 {
		if err := opts.DefaultShard.Validate(); err != nil {
			return nil, fmt.Errorf("server: %v", err)
		}
	}
	if opts.ProbeInterval < 0 {
		return nil, fmt.Errorf("server: negative probe interval %v", opts.ProbeInterval)
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.HedgeQuantile == 0 {
		opts.HedgeQuantile = 0.9
	}
	if opts.HedgeQuantile <= 0 || opts.HedgeQuantile >= 1 {
		return nil, fmt.Errorf("server: hedge quantile must be in (0, 1), got %v", opts.HedgeQuantile)
	}
	if opts.SnapshotInterval < 0 {
		return nil, fmt.Errorf("server: negative snapshot interval %v", opts.SnapshotInterval)
	}
	if opts.MaxSnapshotBytes < 0 {
		return nil, fmt.Errorf("server: negative snapshot byte cap %d", opts.MaxSnapshotBytes)
	}
	if opts.MaxSnapshotBytes == 0 {
		opts.MaxSnapshotBytes = defaultMaxSnapshotBytes
	}
	if opts.CacheMaxBytes < 0 || opts.TableCacheMaxBytes < 0 {
		return nil, fmt.Errorf("server: cache byte limits must be non-negative")
	}
	if opts.PeerWarm && len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("server: peer warming requires replicas")
	}

	s := &Server{
		opts:   opts,
		cache:  servercache.New(opts.CacheEntries),
		tables: tablecache.New(opts.TableCacheEntries),
		reg:    opts.Registry,
		mux:    http.NewServeMux(),
		sem:    make(chan struct{}, opts.MaxConcurrent),
		start:  time.Now(),
		chaos:  chaos,
	}
	s.cache.SetMaxBytes(opts.CacheMaxBytes)
	s.tables.SetMaxBytes(opts.TableCacheMaxBytes)
	// All model resolution runs through the calibration registry: the
	// base source with versioned refit overrides overlaid. The generic
	// endpoint's capability gate keys on the base source, not the
	// registry (which always implements NodeModelSource).
	_, s.genericOK = opts.Models.(NodeModelSource)
	s.calib = calib.NewRegistry(opts.Models, calib.Options{
		RefitThreshold: opts.RefitThreshold,
		MaxSamples:     opts.MaxFitSamples,
		OnBump:         func(ev calib.BumpEvent) { s.onProfileBump(ev) },
	})
	s.models = s.calib
	if opts.ProfileSnapshot != "" {
		if err := s.calib.LoadSnapshotFile(opts.ProfileSnapshot); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("server: loading profile snapshot %s: %w", opts.ProfileSnapshot, err)
		}
	}
	s.registerMetrics()
	s.chaos.OnInject = func(kind string) { s.chaosInject[kind].Inc() }
	s.breaker = resilience.NewBreaker(resilience.BreakerOptions{
		FailureThreshold: opts.BreakerThreshold,
		Cooldown:         opts.BreakerCooldown,
		OnStateChange: func(_, to resilience.BreakerState) {
			s.breakerState.Set(int64(to))
			if to == resilience.Open {
				s.breakerOpens.Inc()
			}
		},
	})
	if len(opts.Replicas) > 0 {
		// One breaker per replica URL: a dead replica fails its shards
		// fast; every open transition is counted fleet-wide and mirrored
		// into that target's labeled breaker_state gauge. Context
		// cancellations are neutral — a hedge loser was abandoned, not
		// refused, so it must not trip a healthy replica's breaker.
		s.fleet = newFleetClient(func(target string) *resilience.Breaker {
			gauge := s.targetBreaker[target]
			return resilience.NewBreaker(resilience.BreakerOptions{
				FailureThreshold: opts.BreakerThreshold,
				Cooldown:         opts.BreakerCooldown,
				IsFailure:        func(err error) bool { return !errors.Is(err, context.Canceled) },
				OnStateChange: func(_, to resilience.BreakerState) {
					if gauge != nil {
						gauge.Set(int64(to))
					}
					if to == resilience.Open {
						s.fleetBreakerOpens.Inc()
					}
				},
			})
		})
		s.shardRing = shard.NewRing(opts.Replicas, 0)
		if opts.RouteKey == "workload" || opts.RouteKey == "cluster" {
			s.ring = s.shardRing
		}
		s.health, err = fleethealth.New(fleethealth.Options{
			Targets:      opts.Replicas,
			Interval:     opts.ProbeInterval,
			SuspectAfter: opts.SuspectAfter,
			DeadAfter:    opts.DeadAfter,
			OnTransition: func(target string, _, to fleethealth.State) {
				if g := s.replicaState[target]; g != nil {
					g.Set(int64(to))
				}
				// Peer warming: the first sibling probed healthy donates its
				// hottest cache entries to this freshly started replica.
				s.maybePeerWarm(target, to)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.health.Start()
	}
	// Preheat before the listener can open: the first request served
	// after New returns already sees warm caches. A corrupt snapshot
	// fails New (like ProfileSnapshot); an incompatible one is counted
	// and skipped — the server starts cold rather than refusing to start
	// after a legitimate profile or build change.
	if opts.SnapshotPath != "" {
		if err := s.preheat(opts.SnapshotPath); err != nil {
			s.Close()
			return nil, fmt.Errorf("server: preheating from %s: %w", opts.SnapshotPath, err)
		}
		if opts.SnapshotInterval > 0 {
			s.snapStop = make(chan struct{})
			s.snapDone = make(chan struct{})
			go s.snapshotWriter()
		}
	}
	// The OnTransition hook only fires on state changes; a freshly
	// started replica whose siblings are already healthy sees none, so a
	// startup watcher makes the initial pull.
	if opts.PeerWarm {
		s.warmStop = make(chan struct{})
		s.warmDone = make(chan struct{})
		go s.peerWarmAtStartup()
	}
	s.registerRoutes()
	return s, nil
}

func (s *Server) registerMetrics() {
	r := s.reg
	s.inflight = r.NewGauge("heteromixd_inflight_requests",
		"requests currently executing")
	s.rejected = r.NewCounter("heteromixd_rejected_total",
		"requests shed by the concurrency limiter")
	s.timeouts = r.NewCounter("heteromixd_timeouts_total",
		"requests aborted by the per-request timeout")
	s.tableBuilds = r.NewCounter("heteromixd_kernel_table_builds_total",
		"kernel tables built (cache misses on the table layer)")
	s.cacheHits = r.NewCounter("heteromixd_cache_hits_total",
		"result cache hits")
	s.cacheMisses = r.NewCounter("heteromixd_cache_misses_total",
		"result cache misses")
	s.cacheCollap = r.NewCounter("heteromixd_cache_collapsed_total",
		"requests that shared another request's computation (singleflight)")
	s.cacheEvict = r.NewCounter("heteromixd_cache_evictions_total",
		"result cache LRU evictions")
	s.cacheStale = r.NewCounter("heteromixd_cache_stale_serves_total",
		"expired cache entries served because the recompute failed")
	s.tcacheHits = r.NewCounter("heteromixd_table_cache_hits_total",
		"compiled kernel-table cache hits")
	s.tcacheMisses = r.NewCounter("heteromixd_table_cache_misses_total",
		"compiled kernel-table cache misses")
	s.tcacheEvict = r.NewCounter("heteromixd_table_cache_evictions_total",
		"compiled kernel-table cache LRU evictions")
	s.tcacheBytes = r.NewGauge("heteromixd_table_cache_bytes",
		"resident size of cached compiled kernel tables")
	s.batchItems = r.NewCounter("heteromixd_batch_items_total",
		"items received inside /v1/batch requests")
	s.batchErrors = r.NewCounter("heteromixd_batch_item_errors_total",
		"batch items that answered a per-item error object")
	s.panics = r.NewCounter("heteromixd_panics_recovered_total",
		"handler panics contained by the recovery middleware")
	s.degraded = r.NewCounter("heteromixd_degraded_responses_total",
		"responses served stale and marked degraded")
	s.genericPoints = r.NewCounter("heteromixd_generic_points_evaluated_total",
		"N-type configurations evaluated by /v1/enumerate-generic")
	s.genericPruned = r.NewCounter("heteromixd_generic_points_pruned_total",
		"N-type configurations skipped by domination pruning")
	s.breakerState = r.NewGauge("heteromixd_breaker_state",
		"enumerate circuit breaker state (0 closed, 1 open, 2 half-open)")
	s.breakerOpens = r.NewCounter("heteromixd_breaker_opens_total",
		"times the enumerate circuit breaker tripped open")
	s.fleetFanouts = r.NewCounter("heteromixd_fleet_fanouts_total",
		"coordinator scatter-gather fan-outs issued")
	s.fleetShardErrors = r.NewCounter("heteromixd_fleet_shard_errors_total",
		"shard requests that failed within a fan-out")
	s.fleetBreakerOpens = r.NewCounter("heteromixd_fleet_breaker_opens_total",
		"times a per-replica circuit breaker tripped open")
	s.fleetHedges = r.NewCounter("heteromixd_fleet_hedges_total",
		"hedged shard requests launched after the hedge delay")
	s.fleetHedgeWins = r.NewCounter("heteromixd_fleet_hedge_wins_total",
		"hedged shard requests that answered before the primary")
	s.fleetFailovers = r.NewCounter("heteromixd_fleet_failovers_total",
		"shard requests re-sent to the next replica after the primary failed")
	s.fleetShardLatency = r.NewHistogram("heteromixd_fleet_shard_latency_seconds",
		"successful shard request latency as seen by the coordinator",
		metrics.DefLatencyBuckets())
	s.deadlineCapped = r.NewCounter("heteromixd_deadline_capped_total",
		"requests whose timeout was tightened by a propagated X-Deadline-Ms")
	s.streamRows = r.NewCounter("heteromixd_stream_rows_total",
		"point/add/del records shipped on streamed enumeration responses")
	s.streamFlushes = r.NewCounter("heteromixd_stream_flushes_total",
		"chunk boundary flushes pushed to streaming clients")
	s.streamDisconnects = r.NewCounter("heteromixd_stream_disconnects_total",
		"streams abandoned by the client mid-response (the walk was shed)")
	s.deltaHits = r.NewCounter("heteromixd_delta_hits_total",
		"delta-requested streams that found a predecessor frontier and shipped ops")
	s.deltaMisses = r.NewCounter("heteromixd_delta_misses_total",
		"delta-requested streams that fell back to a full stream")
	s.deltaAdds = r.NewCounter("heteromixd_delta_adds_total",
		"add ops shipped on delta streams")
	s.deltaDels = r.NewCounter("heteromixd_delta_dels_total",
		"del ops shipped on delta streams")
	s.replicaState = make(map[string]*metrics.Gauge, len(s.opts.Replicas))
	s.targetBreaker = make(map[string]*metrics.Gauge, len(s.opts.Replicas))
	for _, target := range s.opts.Replicas {
		s.replicaState[target] = r.NewGauge("heteromixd_fleet_replica_state",
			"probed replica health (0 healthy, 1 suspect, 2 dead, 3 recovering)",
			metrics.Label{Key: "target", Value: target})
		s.targetBreaker[target] = r.NewGauge("heteromixd_breaker_state",
			"per-replica circuit breaker state (0 closed, 1 open, 2 half-open)",
			metrics.Label{Key: "target", Value: target})
	}
	s.routedReqs = r.NewCounter("heteromixd_routed_requests_total",
		"requests forwarded to their consistent-hash owner")
	s.routeFallbacks = r.NewCounter("heteromixd_route_fallbacks_total",
		"forwards that failed and fell back to local compute")
	s.calibSamples = r.NewCounter("heteromixd_calib_samples_total",
		"calibration samples accepted by /v1/fit")
	s.calibRefits = r.NewCounter("heteromixd_calib_refits_total",
		"automatic profile refits installed")
	s.calibInvalid = r.NewCounter("heteromixd_calib_invalidations_total",
		"cache entries invalidated by profile version bumps")
	s.calibSnapErrors = r.NewCounter("heteromixd_calib_snapshot_errors_total",
		"profile snapshot writes that failed")
	s.calibDrift = r.NewGauge("heteromixd_calib_drift_ppm",
		"worst rolling mean relative prediction error across calibrated pairs, parts per million")
	s.snapshotLoads = r.NewCounter("heteromixd_snapshot_load_total",
		"cache snapshots loaded (preheat and peer warming)")
	s.snapshotSaves = r.NewCounter("heteromixd_snapshot_save_total",
		"cache snapshots written by the background writer")
	s.snapshotRejects = r.NewCounter("heteromixd_snapshot_reject_total",
		"cache snapshots rejected (incompatible, corrupt, oversized or profile-mismatched)")
	s.snapshotSaveErrs = r.NewCounter("heteromixd_snapshot_save_errors_total",
		"cache snapshot writes that failed")
	s.snapshotBytes = r.NewGauge("heteromixd_snapshot_bytes",
		"size of the last cache snapshot loaded or written")
	s.chaosInject = make(map[string]*metrics.Counter, len(chaosKinds))
	for _, kind := range chaosKinds {
		s.chaosInject[kind] = r.NewCounter("heteromixd_chaos_injections_total",
			"chaos faults injected", metrics.Label{Key: "kind", Value: kind})
	}
	s.byEndpoint = make(map[string]*endpointMetrics, len(endpointNames))
	for _, ep := range endpointNames {
		s.byEndpoint[ep] = &endpointMetrics{
			requests: r.NewCounter("heteromixd_requests_total",
				"requests received", metrics.Label{Key: "endpoint", Value: ep}),
			errors: r.NewCounter("heteromixd_request_errors_total",
				"requests answered with a 4xx/5xx status",
				metrics.Label{Key: "endpoint", Value: ep}),
			latency: r.NewHistogram("heteromixd_request_latency_seconds",
				"request latency", metrics.DefLatencyBuckets(),
				metrics.Label{Key: "endpoint", Value: ep}),
		}
	}
	info := buildinfo.Get()
	r.NewGauge("heteromixd_build_info", "build identity (value is always 1)",
		metrics.Label{Key: "version", Value: info.Version},
		metrics.Label{Key: "commit", Value: info.Commit}).Set(1)
	s.reg.Expvar("heteromixd")
}

// syncCacheMetrics mirrors the cache's own monotone counters into the
// registry; called at export time so the scrape is always current.
func (s *Server) syncCacheMetrics() {
	st := s.cache.Stats()
	s.cacheHits.Store(st.Hits)
	s.cacheMisses.Store(st.Misses)
	s.cacheCollap.Store(st.Collapsed)
	s.cacheEvict.Store(st.Evictions)
	s.cacheStale.Store(st.StaleServes)
	ts := s.tables.Stats()
	s.tcacheHits.Store(ts.Hits)
	s.tcacheMisses.Store(ts.Misses)
	s.tcacheEvict.Store(ts.Evictions)
	s.tcacheBytes.Set(ts.Bytes)
}

func (s *Server) registerRoutes() {
	s.mux.Handle("POST /v1/predict", s.instrument("predict", true, s.handlePredict))
	s.mux.Handle("POST /v1/enumerate", s.instrument("enumerate", true, s.handleEnumerate))
	s.mux.Handle("POST /v1/enumerate-generic", s.instrument("enumerate-generic", true, s.handleEnumerateGeneric))
	s.mux.Handle("GET /v1/enumerate-generic/stream", s.instrument("enumerate-generic-stream", true, s.handleEnumerateGenericSSE))
	s.mux.Handle("POST /v1/budget", s.instrument("budget", true, s.handleBudget))
	s.mux.Handle("POST /v1/queueing", s.instrument("queueing", true, s.handleQueueing))
	s.mux.Handle("POST /v1/batch", s.instrument("batch", true, s.handleBatch))
	s.mux.Handle("POST /v1/fit", s.instrument("fit", true, s.handleFit))
	s.mux.Handle("GET /v1/profiles", s.instrument("profiles", false, s.handleProfiles))
	s.mux.Handle("GET /v1/snapshot", s.instrument("snapshot", false, s.handleSnapshotGet))
	s.mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	s.mux.Handle("GET /readyz", s.instrument("readyz", false, s.handleReadyz))
	s.mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.syncCacheMetrics()
		s.reg.Handler().ServeHTTP(w, r)
	}))
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if s.opts.EnablePprof {
		// Deliberately outside instrument(): profiling must stay reachable
		// when the limiter is shedding, and a 30s CPU profile must not
		// trip the request timeout.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the fully routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush lets streamed responses push chunk boundaries through the
// instrumentation wrapper to the real connection.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// shedRetryAfter returns a jittered Retry-After value in [1, 3] seconds
// so a shed herd does not retry in lockstep and re-shed itself.
func shedRetryAfter() string {
	return strconv.Itoa(1 + rand.Intn(3))
}

// instrument wraps a handler with the serving policy: in-flight
// accounting, the concurrency limiter (limited endpoints only), the
// per-request timeout, chaos injection (limited endpoints, when
// enabled), panic containment via resilience.Recover and per-endpoint
// metrics.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	em := s.byEndpoint[endpoint]
	// Chaos sits inside Recover so injected panics exercise the same
	// containment a real handler bug would. The test hook runs innermost,
	// inside both, so hook-injected panics and stalls are also contained.
	var inner http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.testHookStart != nil {
			s.testHookStart(endpoint)
		}
		h(w, r)
	})
	if limited {
		inner = s.chaos.Middleware(inner)
	}
	inner = resilience.Recover(func(any) { s.panics.Inc() }, inner)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		em.requests.Inc()
		s.inflight.Inc()
		defer s.inflight.Dec()

		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rejected.Inc()
				em.errors.Inc()
				w.Header().Set("Retry-After", shedRetryAfter())
				writeError(w, http.StatusServiceUnavailable,
					"over capacity (%d concurrent requests)", s.opts.MaxConcurrent)
				return
			}
		}
		// Deadline propagation: a coordinator stamps its remaining budget
		// on sub-requests as X-Deadline-Ms; a tighter propagated deadline
		// caps this handler's timeout so the replica sheds work whose
		// answer the coordinator could no longer use. Malformed values are
		// a client error (400, never 500).
		timeout := s.opts.RequestTimeout
		if h := r.Header.Get(deadlineHeader); h != "" && limited {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil || ms <= 0 || ms > maxDeadlineMs {
				em.errors.Inc()
				writeError(w, http.StatusBadRequest,
					"%s must be an integer in [1, %d], got %q", deadlineHeader, maxDeadlineMs, h)
				return
			}
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
				s.deadlineCapped.Inc()
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		startAt := time.Now()
		inner.ServeHTTP(sw, r)
		em.latency.Observe(time.Since(startAt).Seconds())
		if sw.code >= 400 {
			em.errors.Inc()
		}
		if ctx.Err() != nil {
			s.timeouts.Inc()
		}
	})
}

// Serve accepts connections on l until Shutdown. A nil error means the
// listener was closed by Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	srv := s.httpSrv
	s.mu.Unlock()
	if err := srv.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Run listens on addr and serves until ctx is cancelled (the daemon
// wires SIGTERM/SIGINT into ctx), then drains in-flight requests for up
// to Options.ShutdownGrace before returning.
func (s *Server) Run(ctx context.Context, addr string) error {
	defer s.Close()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	// Record the bound address (addr may have asked for port 0).
	s.httpSrv.Addr = l.Addr().String()
	s.mu.Unlock()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Flip readiness first so load balancers stop routing here, keep
		// serving for DrainDelay, then close the listener and drain
		// in-flight requests.
		s.draining.Store(true)
		if s.opts.DrainDelay > 0 {
			time.Sleep(s.opts.DrainDelay)
		}
		drain, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
		defer cancel()
		if err := s.Shutdown(drain); err != nil {
			return err
		}
		return <-errCh
	}
}

// Close releases the server's background resources — the fleet health
// prober's goroutines and the snapshot writer (which persists one final
// snapshot so a clean shutdown keeps its warmth). Idempotent and safe
// on a server without replicas; callers that construct with New and
// never Run should defer it (Run closes on exit itself).
func (s *Server) Close() {
	if s.warmStop != nil {
		s.warmOnce.Do(func() {
			close(s.warmStop)
			<-s.warmDone
		})
	}
	if s.snapStop != nil {
		s.snapOnce.Do(func() {
			close(s.snapStop)
			<-s.snapDone
		})
	}
	if s.health != nil {
		s.health.Stop()
	}
}

// FleetHealth returns the current replica-set snapshot, nil without
// replicas. Lock-free; intended for tests, logs and operator tooling.
func (s *Server) FleetHealth() *fleethealth.ReplicaSet {
	if s.health == nil {
		return nil
	}
	return s.health.Snapshot()
}

// ProbeFleet forces one synchronous probe round across all replicas —
// how tests observe kill/revive transitions without waiting out the
// probe interval. No-op without replicas.
func (s *Server) ProbeFleet(ctx context.Context) {
	if s.health != nil {
		s.health.ProbeNow(ctx)
	}
}

// Draining reports whether graceful shutdown has begun (readyz is 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// BreakerState exposes the enumerate breaker's state (for tests/logs).
func (s *Server) BreakerState() resilience.BreakerState { return s.breaker.State() }

// Addr returns the bound address once Serve has been called via Run;
// empty otherwise. Intended for logs.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv == nil {
		return ""
	}
	return s.httpSrv.Addr
}

// CacheStats exposes the result cache's counters (for tests and logs).
func (s *Server) CacheStats() servercache.Stats { return s.cache.Stats() }

// TableCacheStats exposes the compiled kernel-table cache's counters.
func (s *Server) TableCacheStats() tablecache.Stats { return s.tables.Stats() }

// TableBuilds reports how many kernel tables have been built — the
// number a singleflight-collapsed herd keeps at one per distinct space.
func (s *Server) TableBuilds() uint64 { return s.tableBuilds.Value() }
