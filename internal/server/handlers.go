package server

// Request decoding, validation and the endpoint handlers. The contract
// the fuzz tests pin down: any malformed, unknown-field, non-finite,
// negative or out-of-range input is answered with a 400 and a JSON
// error body — never a 500, never a panic. Valid requests are
// canonicalized (defaults applied, frequencies resolved to exact
// P-states) before they become cache keys, so equivalent requests share
// one cache entry.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"heteromix/internal/budget"
	"heteromix/internal/buildinfo"
	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/queueing"
	"heteromix/internal/resilience"
	"heteromix/internal/tablecache"
	"heteromix/internal/units"
	"heteromix/internal/workloads"
)

// maxWork bounds accepted work volumes; beyond this the float arithmetic
// is still fine but the request is nonsense.
const maxWork = 1e15

// errorResponse is every error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; guard anyway.
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeRaw writes pre-marshaled JSON (the cached fast path).
func writeRaw(w http.ResponseWriter, body []byte, cached bool) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if cached {
		h.Set("X-Cache", "hit")
	} else {
		h.Set("X-Cache", "miss")
	}
	w.Write(body)
}

// decode reads and unmarshals the request body into T, rejecting
// unknown fields. ok=false means an error status was already written:
// 413 when the body exceeds MaxBodyBytes, 400 for everything else.
func decode[T any](s *Server, w http.ResponseWriter, r *http.Request) (T, bool) {
	var req T
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if errors.As(err, new(*http.MaxBytesError)) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.opts.MaxBodyBytes)
			return req, false
		}
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return req, false
	}
	// Trailing garbage after the JSON document is also a client error.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, "invalid request body: trailing data")
		return req, false
	}
	return req, true
}

// badRequest is a validation failure destined for a 400.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequest{msg: fmt.Sprintf(format, args...)}
}

// replyError maps a handler error to a status: validation failures are
// 400, a profile-version conflict 409 (retryable: the caller re-reads
// the active version), an open circuit breaker or a timeout 503,
// anything else 500.
func replyError(w http.ResponseWriter, r *http.Request, err error) {
	var br badRequest
	var pc errProfileConflict
	switch {
	case errors.As(err, &br):
		writeError(w, http.StatusBadRequest, "%s", br.msg)
	case errors.As(err, &pc):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, resilience.ErrOpen), errors.Is(err, errFleetUnavailable):
		// The compute path is known-bad and nothing cached could stand in;
		// tell the client when the breaker will admit a probe. A fleet
		// fan-out with every shard down is the same situation, not a
		// server bug, so it maps to 503 too.
		w.Header().Set("Retry-After", shedRetryAfter())
		writeError(w, http.StatusServiceUnavailable, "temporarily unavailable: %v", err)
	case r.Context().Err() != nil:
		writeError(w, http.StatusServiceUnavailable, "request timed out: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// validWorkload resolves the workload name, defaulting the work volume
// from the registry's analysis size.
func validWorkload(name string, work float64) (workloads.Spec, float64, error) {
	if name == "" {
		return workloads.Spec{}, 0, badRequestf("workload is required (one of %v)", workloads.Names())
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		return workloads.Spec{}, 0, badRequestf("unknown workload %q (one of %v)", name, workloads.Names())
	}
	if work == 0 {
		work = spec.AnalysisUnits
	}
	if math.IsNaN(work) || math.IsInf(work, 0) || work <= 0 || work > maxWork {
		return workloads.Spec{}, 0, badRequestf("work must be in (0, %g], got %v", maxWork, work)
	}
	return spec, work, nil
}

// GroupRequest selects one node type's share of a configuration.
type GroupRequest struct {
	// Nodes is the node count; 0 leaves the type unused.
	Nodes int `json:"nodes"`
	// Cores per node; 0 selects the spec's maximum.
	Cores int `json:"cores,omitempty"`
	// GHz is the core clock; 0 selects the spec's maximum P-state.
	GHz float64 `json:"ghz,omitempty"`
}

// resolveGroup validates and canonicalizes one side against its spec:
// defaults applied, the frequency snapped to an exact P-state.
func (s *Server) resolveGroup(side string, g GroupRequest, spec hwsim.NodeSpec) (GroupRequest, hwsim.Config, error) {
	if g.Nodes < 0 || g.Nodes > s.opts.MaxNodes {
		return g, hwsim.Config{}, badRequestf("%s.nodes must be in [0, %d], got %d", side, s.opts.MaxNodes, g.Nodes)
	}
	if g.Nodes == 0 {
		if g.Cores != 0 || g.GHz != 0 {
			return g, hwsim.Config{}, badRequestf("%s has settings but zero nodes", side)
		}
		return GroupRequest{}, hwsim.Config{}, nil
	}
	if g.Cores == 0 {
		g.Cores = spec.Cores
	}
	if g.Cores < 1 || g.Cores > spec.Cores {
		return g, hwsim.Config{}, badRequestf("%s.cores must be in [1, %d], got %d", side, spec.Cores, g.Cores)
	}
	if math.IsNaN(g.GHz) || math.IsInf(g.GHz, 0) || g.GHz < 0 {
		return g, hwsim.Config{}, badRequestf("%s.ghz must be a non-negative finite number", side)
	}
	var freq units.Hertz
	if g.GHz == 0 {
		freq = spec.FMax()
	} else {
		want := g.GHz * 1e9
		for _, f := range spec.Frequencies {
			if math.Abs(float64(f)-want) <= 1e-3*float64(f) {
				freq = f
				break
			}
		}
		if freq == 0 {
			ghz := make([]float64, len(spec.Frequencies))
			for i, f := range spec.Frequencies {
				ghz[i] = f.GHzValue()
			}
			return g, hwsim.Config{}, badRequestf("%s.ghz %v is not a P-state of %s (available: %v)",
				side, g.GHz, spec.Name, ghz)
		}
	}
	g.GHz = freq.GHzValue()
	return g, hwsim.Config{Cores: g.Cores, Frequency: freq}, nil
}

// canonicalKey renders a canonicalized request as a cache key. keyed is
// false when the value cannot marshal: such requests must bypass the
// cache entirely — a shared fallback key would alias every unmarshalable
// request onto one entry and serve one request's body for another's.
func canonicalKey(endpoint string, v any) (key string, keyed bool) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", false
	}
	return endpoint + "|" + string(b), true
}

// profileTag renders the versioned workload component every cache key
// embeds: "<workload>@v<version>". A profile bump changes the tag, so
// keys minted under the old version become unreachable the instant the
// registry's version moves — the invalidation sweep only reclaims their
// memory.
func (s *Server) profileTag(workload string) string {
	return workload + "@v" + strconv.FormatUint(s.calib.Version(workload), 10)
}

// versionedKey is canonicalKey with the workload's profile tag spliced
// in: "endpoint|workload@vN|{json}".
func (s *Server) versionedKey(endpoint, workload string, v any) (key string, keyed bool) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", false
	}
	return endpoint + "|" + s.profileTag(workload) + "|" + string(b), true
}

// doCached runs compute through the result cache under key, or directly
// and uncached when keyed is false (the canonicalKey fallback).
func (s *Server) doCached(key string, keyed bool, compute func() (any, error)) (any, bool, error) {
	if !keyed {
		v, err := compute()
		return v, false, err
	}
	return s.cache.Do(key, compute)
}

// doFresh is doCached for the TTL + degraded-stale paths.
func (s *Server) doFresh(key string, keyed bool, compute func() (any, error)) (v any, cached, stale bool, err error) {
	if !keyed {
		v, err = compute()
		return v, false, false, err
	}
	return s.cache.DoFresh(key, s.opts.CacheTTL, compute)
}

// tableFor memoizes one compiled kernel table per (workload,
// switch-accounting) pair in the table cache — keyed by the cluster
// spec alone, never by per-request parameters, so every work size and
// deadline against the same cluster shares one artifact. Concurrent
// identical requests collapse onto one build.
func (s *Server) tableFor(workload string, noSwitch bool) (*cluster.Table, error) {
	key := fmt.Sprintf("table|%s|%t", s.profileTag(workload), noSwitch)
	v, _, err := s.tables.Do(key, func() (tablecache.Artifact, error) {
		space, err := s.models.Space(workload)
		if err != nil {
			return nil, fmt.Errorf("building models for %q: %w", workload, err)
		}
		space.NoSwitchEnergy = noSwitch
		tbl, err := space.NewTable()
		if err != nil {
			return nil, fmt.Errorf("building kernel table for %q: %w", workload, err)
		}
		s.tableBuilds.Inc()
		return tbl, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cluster.Table), nil
}

// --- /v1/predict -----------------------------------------------------

// PredictRequest asks for one configuration's predicted time and energy.
type PredictRequest struct {
	Workload string       `json:"workload"`
	ARM      GroupRequest `json:"arm"`
	AMD      GroupRequest `json:"amd"`
	// Work is the job size in work units; 0 selects the workload's §IV
	// analysis size (e.g. 50 M random numbers for EP).
	Work           float64 `json:"work,omitempty"`
	NoSwitchEnergy bool    `json:"no_switch_energy,omitempty"`
}

// PredictResponse is the evaluated point.
type PredictResponse struct {
	Workload string               `json:"workload"`
	Work     float64              `json:"work"`
	Point    cluster.PointSummary `json:"point"`
	// AvgPowerWatts is energy over time, the draw the budget analysis
	// compares against peak.
	AvgPowerWatts float64 `json:"avg_power_watts"`
}

// normalizePredict validates and canonicalizes; the returned request is
// the cache-key form and cfg the resolved configuration.
func (s *Server) normalizePredict(req PredictRequest) (PredictRequest, cluster.Configuration, error) {
	_, work, err := validWorkload(req.Workload, req.Work)
	if err != nil {
		return req, cluster.Configuration{}, err
	}
	req.Work = work
	space, err := s.models.Space(req.Workload)
	if err != nil {
		return req, cluster.Configuration{}, err
	}
	var cfg cluster.Configuration
	if req.ARM, cfg.ARM.Config, err = s.resolveGroup("arm", req.ARM, space.ARM.Spec); err != nil {
		return req, cfg, err
	}
	if req.AMD, cfg.AMD.Config, err = s.resolveGroup("amd", req.AMD, space.AMD.Spec); err != nil {
		return req, cfg, err
	}
	cfg.ARM.Nodes = req.ARM.Nodes
	cfg.AMD.Nodes = req.AMD.Nodes
	if cfg.ARM.Nodes+cfg.AMD.Nodes == 0 {
		return req, cfg, badRequestf("at least one of arm.nodes, amd.nodes must be positive")
	}
	return req, cfg, nil
}

// predictBytes returns the marshaled response for a canonicalized
// request, from cache when possible.
func (s *Server) predictBytes(req PredictRequest, cfg cluster.Configuration) ([]byte, bool, error) {
	key, keyed := s.versionedKey("predict", req.Workload, req)
	v, cached, err := s.doCached(key, keyed, func() (any, error) {
		tbl, err := s.tableFor(req.Workload, req.NoSwitchEnergy)
		if err != nil {
			return nil, err
		}
		p, err := tbl.Evaluate(cfg, req.Work)
		if err != nil {
			return nil, err
		}
		resp := PredictResponse{
			Workload:      req.Workload,
			Work:          req.Work,
			Point:         p.Summary(),
			AvgPowerWatts: float64(p.Energy) / float64(p.Time),
		}
		return json.Marshal(resp)
	})
	if err != nil {
		return nil, false, err
	}
	return v.([]byte), cached, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[PredictRequest](s, w, r)
	if !ok {
		return
	}
	norm, cfg, err := s.normalizePredict(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	// With routing configured, the canonicalized request goes to the
	// consistent-hash owner of its workload so that replica's table
	// cache serves it hot; a failed forward computes locally instead.
	if s.routeForward(w, r, "/v1/predict", s.routeKeyPredict(norm), norm) {
		return
	}
	body, cached, err := s.predictBytes(norm, cfg)
	if err != nil {
		replyError(w, r, err)
		return
	}
	writeRaw(w, body, cached)
}

// --- /v1/enumerate ---------------------------------------------------

// EnumerateRequest asks for a bounded configuration space.
type EnumerateRequest struct {
	Workload string  `json:"workload"`
	MaxARM   int     `json:"max_arm"`
	MaxAMD   int     `json:"max_amd"`
	Work     float64 `json:"work,omitempty"`
	// FrontierOnly returns just the Pareto-optimal points, streamed
	// through the online frontier — the space is never materialized.
	FrontierOnly bool `json:"frontier_only,omitempty"`
	// Limit caps returned points when FrontierOnly is false (default
	// 1000, capped by the server's MaxPoints).
	Limit          int  `json:"limit,omitempty"`
	NoSwitchEnergy bool `json:"no_switch_energy,omitempty"`
}

// EnumerateResponse carries the points (or frontier) of the space.
type EnumerateResponse struct {
	Workload  string  `json:"workload"`
	Work      float64 `json:"work"`
	SpaceSize int     `json:"space_size"`
	// Returned is len(Points); Truncated marks a Limit cut.
	Returned     int                    `json:"returned"`
	Truncated    bool                   `json:"truncated,omitempty"`
	FrontierOnly bool                   `json:"frontier_only,omitempty"`
	Points       []cluster.PointSummary `json:"points"`
	// Degraded marks a stale result served because the recompute path was
	// failing (circuit open or compute error) — the numbers are from an
	// expired cache entry, not a fresh evaluation.
	Degraded bool `json:"degraded,omitempty"`
}

func (s *Server) normalizeEnumerate(req EnumerateRequest) (EnumerateRequest, error) {
	_, work, err := validWorkload(req.Workload, req.Work)
	if err != nil {
		return req, err
	}
	req.Work = work
	if req.MaxARM < 0 || req.MaxARM > s.opts.MaxNodes {
		return req, badRequestf("max_arm must be in [0, %d], got %d", s.opts.MaxNodes, req.MaxARM)
	}
	if req.MaxAMD < 0 || req.MaxAMD > s.opts.MaxNodes {
		return req, badRequestf("max_amd must be in [0, %d], got %d", s.opts.MaxNodes, req.MaxAMD)
	}
	if req.MaxARM+req.MaxAMD == 0 {
		return req, badRequestf("at least one of max_arm, max_amd must be positive")
	}
	if req.Limit < 0 {
		return req, badRequestf("limit must be non-negative, got %d", req.Limit)
	}
	if req.FrontierOnly {
		req.Limit = 0
	} else {
		if req.Limit == 0 {
			req.Limit = 1000
		}
		if req.Limit > s.opts.MaxPoints {
			req.Limit = s.opts.MaxPoints
		}
	}
	return req, nil
}

// enumerateBytes returns the marshaled response for a canonicalized
// request. The compute path runs through the circuit breaker and the
// cache's freshness bound: when the breaker is open or the compute
// fails, an expired cache entry is served with degraded=true rather
// than cascading the failure.
func (s *Server) enumerateBytes(r *http.Request, req EnumerateRequest) (body []byte, cached, degraded bool, err error) {
	key, keyed := s.versionedKey("enumerate", req.Workload, req)
	ctx := r.Context()
	v, cached, stale, err := s.doFresh(key, keyed, func() (any, error) {
		var out []byte
		berr := s.breaker.Do(func() error {
			tbl, err := s.tableFor(req.Workload, req.NoSwitchEnergy)
			if err != nil {
				return err
			}
			resp := EnumerateResponse{
				Workload:     req.Workload,
				Work:         req.Work,
				SpaceSize:    tbl.Size(req.MaxARM, req.MaxAMD),
				FrontierOnly: req.FrontierOnly,
			}
			if req.FrontierOnly {
				pts, _, err := tbl.Frontier(req.MaxARM, req.MaxAMD, req.Work)
				if err != nil {
					return err
				}
				resp.Points = make([]cluster.PointSummary, len(pts))
				for i, p := range pts {
					resp.Points[i] = p.Summary()
				}
			} else {
				resp.Points = make([]cluster.PointSummary, 0, min(req.Limit, resp.SpaceSize))
				n := 0
				err := tbl.ForEach(req.MaxARM, req.MaxAMD, req.Work, func(p cluster.Point) bool {
					// The walk is pure arithmetic; poll for cancellation at
					// coarse intervals so a timed-out request stops burning CPU.
					n++
					if n&0x1fff == 0 && ctx.Err() != nil {
						return false
					}
					if len(resp.Points) >= req.Limit {
						resp.Truncated = true
						return false
					}
					resp.Points = append(resp.Points, p.Summary())
					return true
				})
				if err != nil {
					return err
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
			}
			resp.Returned = len(resp.Points)
			// The cancellation-aware encoder: a deadline that expires while
			// a large body marshals aborts the encode, not just the walk.
			b, err := encodeEnumerateResponse(ctx, &resp)
			if err != nil {
				return err
			}
			out = b
			return nil
		})
		if berr != nil {
			return nil, berr
		}
		return out, nil
	})
	if stale {
		s.degraded.Inc()
		return v.([]byte), false, true, nil
	}
	if err != nil {
		return nil, false, false, err
	}
	return v.([]byte), cached, false, nil
}

// markDegraded splices "degraded":true into a marshaled response so a
// stale body serves with the flag set without a re-marshal round trip.
func markDegraded(body []byte) []byte {
	trimmed := bytes.TrimRight(body, " \t\r\n")
	if len(trimmed) < 2 || trimmed[len(trimmed)-1] != '}' {
		return body
	}
	out := make([]byte, 0, len(trimmed)+len(`,"degraded":true}`))
	out = append(out, trimmed[:len(trimmed)-1]...)
	if trimmed[len(trimmed)-2] != '{' {
		out = append(out, ',')
	}
	return append(out, `"degraded":true}`...)
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[EnumerateRequest](s, w, r)
	if !ok {
		return
	}
	norm, err := s.normalizeEnumerate(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	if wantsStream(r) {
		s.streamEnumerate(w, r, norm)
		return
	}
	body, cached, degraded, err := s.enumerateBytes(r, norm)
	if err != nil {
		replyError(w, r, err)
		return
	}
	if degraded {
		w.Header().Set("X-Degraded", "true")
		s.writeBody(w, r, markDegraded(body), false)
		return
	}
	s.writeBody(w, r, body, cached)
}

// --- /v1/budget ------------------------------------------------------

// BudgetRequest asks for the constant-peak-power substitution series
// within a budget (the paper's §IV-C analysis).
type BudgetRequest struct {
	Workload       string  `json:"workload"`
	BudgetWatts    float64 `json:"budget_watts"`
	Work           float64 `json:"work,omitempty"`
	NoSwitchEnergy bool    `json:"no_switch_energy,omitempty"`
}

// BudgetMix is one generated mix, evaluated at both types' maximum
// settings (the operating point of Figures 6–7).
type BudgetMix struct {
	ARM       int                  `json:"arm"`
	AMD       int                  `json:"amd"`
	PeakWatts float64              `json:"peak_watts"`
	Point     cluster.PointSummary `json:"point"`
}

// BudgetResponse is the substitution series.
type BudgetResponse struct {
	Workload          string      `json:"workload"`
	Work              float64     `json:"work"`
	BudgetWatts       float64     `json:"budget_watts"`
	SubstitutionRatio int         `json:"substitution_ratio"`
	ARMPeakWatts      float64     `json:"arm_peak_watts"`
	AMDPeakWatts      float64     `json:"amd_peak_watts"`
	SwitchWatts       float64     `json:"switch_watts"`
	Mixes             []BudgetMix `json:"mixes"`
}

func (s *Server) normalizeBudget(req BudgetRequest) (BudgetRequest, error) {
	_, work, err := validWorkload(req.Workload, req.Work)
	if err != nil {
		return req, err
	}
	req.Work = work
	if math.IsNaN(req.BudgetWatts) || math.IsInf(req.BudgetWatts, 0) || req.BudgetWatts <= 0 {
		return req, badRequestf("budget_watts must be positive and finite, got %v", req.BudgetWatts)
	}
	return req, nil
}

func (s *Server) budgetBytes(req BudgetRequest) ([]byte, bool, error) {
	key, keyed := s.versionedKey("budget", req.Workload, req)
	v, cached, err := s.doCached(key, keyed, func() (any, error) {
		tbl, err := s.tableFor(req.Workload, req.NoSwitchEnergy)
		if err != nil {
			return nil, err
		}
		space := tbl.Space()
		low, high := space.ARM.Spec, space.AMD.Spec
		// The generated series substitutes ratio ARM nodes per AMD node;
		// cap it by the same per-side bound as every other endpoint.
		ratio := budget.SubstitutionRatio(low, high)
		maxAMD := int(req.BudgetWatts / float64(high.PeakPower()))
		if maxAMD > s.opts.MaxNodes || ratio*maxAMD > s.opts.MaxNodes {
			return nil, badRequestf("budget %v W implies mixes beyond %d nodes per side; lower it",
				req.BudgetWatts, s.opts.MaxNodes)
		}
		resp := BudgetResponse{
			Workload:          req.Workload,
			Work:              req.Work,
			BudgetWatts:       req.BudgetWatts,
			SubstitutionRatio: ratio,
			ARMPeakWatts:      float64(low.PeakPower()),
			AMDPeakWatts:      float64(high.PeakPower()),
			SwitchWatts:       float64(cluster.SwitchPower),
		}
		maxARM := hwsim.Config{Cores: low.Cores, Frequency: low.FMax()}
		maxAMDCfg := hwsim.Config{Cores: high.Cores, Frequency: high.FMax()}
		err = budget.ForEachConstantBudgetMix(low, high, units.Watt(req.BudgetWatts), func(m budget.Mix) bool {
			cfg := cluster.Configuration{}
			if m.ARM > 0 {
				cfg.ARM = cluster.TypeConfig{Nodes: m.ARM, Config: maxARM}
			}
			if m.AMD > 0 {
				cfg.AMD = cluster.TypeConfig{Nodes: m.AMD, Config: maxAMDCfg}
			}
			p, evalErr := tbl.Evaluate(cfg, req.Work)
			if evalErr != nil {
				err = evalErr
				return false
			}
			resp.Mixes = append(resp.Mixes, BudgetMix{
				ARM: m.ARM, AMD: m.AMD,
				PeakWatts: float64(budget.PeakPower(m, low, high)),
				Point:     p.Summary(),
			})
			return true
		})
		if err != nil {
			// The paper's series generator rejects budgets that cannot fit
			// one high-performance node — a client error.
			return nil, badRequestf("%v", err)
		}
		return json.Marshal(resp)
	})
	if err != nil {
		return nil, false, err
	}
	return v.([]byte), cached, nil
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[BudgetRequest](s, w, r)
	if !ok {
		return
	}
	norm, err := s.normalizeBudget(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	body, cached, err := s.budgetBytes(norm)
	if err != nil {
		replyError(w, r, err)
		return
	}
	writeRaw(w, body, cached)
}

// --- /v1/queueing ----------------------------------------------------

// QueueingRequest asks for dispatcher-queue behaviour under Poisson
// arrivals: SCV 0 is the paper's M/D/1, SCV 1 is M/M/1.
type QueueingRequest struct {
	ArrivalRate        float64 `json:"arrival_rate"`
	ServiceTimeSeconds float64 `json:"service_time_seconds"`
	SCV                float64 `json:"scv,omitempty"`
	// WindowSeconds, with the two power terms, adds the §IV-E energy
	// accounting over an observation window.
	WindowSeconds  float64 `json:"window_seconds,omitempty"`
	PerJobJoules   float64 `json:"per_job_joules,omitempty"`
	IdlePowerWatts float64 `json:"idle_power_watts,omitempty"`
}

// QueueingResponse carries the derived queue quantities.
type QueueingResponse struct {
	queueing.Summary
	// EnergyJoules is present when window_seconds was given.
	EnergyJoules *float64 `json:"energy_joules,omitempty"`
}

// queueingResult computes the response for a decoded request; every
// failure is a badRequest. Shared by the single endpoint and /v1/batch
// so both answer identical bodies for identical items.
func queueingResult(req QueueingRequest) (QueueingResponse, error) {
	q := queueing.MG1{
		ArrivalRate: req.ArrivalRate,
		MeanService: units.Seconds(req.ServiceTimeSeconds),
		SCV:         req.SCV,
	}
	if err := q.Validate(); err != nil {
		// Every Validate failure — including an unstable rho >= 1 — is a
		// property of the client's parameters.
		return QueueingResponse{}, badRequestf("%v", err)
	}
	resp := QueueingResponse{Summary: q.Summary()}
	if req.WindowSeconds != 0 || req.PerJobJoules != 0 || req.IdlePowerWatts != 0 {
		if req.WindowSeconds <= 0 || math.IsNaN(req.WindowSeconds) || math.IsInf(req.WindowSeconds, 0) {
			return QueueingResponse{}, badRequestf("window_seconds must be positive and finite for energy accounting")
		}
		e, err := q.EnergyOverWindow(units.Seconds(req.WindowSeconds),
			units.Joule(req.PerJobJoules), units.Watt(req.IdlePowerWatts))
		if err != nil {
			return QueueingResponse{}, badRequestf("%v", err)
		}
		ej := float64(e)
		resp.EnergyJoules = &ej
	}
	return resp, nil
}

func (s *Server) handleQueueing(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[QueueingRequest](s, w, r)
	if !ok {
		return
	}
	resp, err := queueingResult(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /healthz --------------------------------------------------------

// HealthResponse reports liveness, identity and cache effectiveness.
type HealthResponse struct {
	Status        string      `json:"status"`
	Version       string      `json:"version"`
	Commit        string      `json:"commit"`
	GoVersion     string      `json:"go_version"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Workloads     []string    `json:"workloads"`
	Inflight      int64       `json:"inflight"`
	Cache         HealthCache `json:"cache"`
	KernelTables  uint64      `json:"kernel_table_builds"`
	// Breaker is the enumerate circuit breaker's state
	// ("closed", "open", "half-open").
	Breaker           string `json:"breaker"`
	DegradedResponses uint64 `json:"degraded_responses"`
	PanicsRecovered   uint64 `json:"panics_recovered"`
	Draining          bool   `json:"draining"`
	// ProfileGeneration is the global profile generation: 1 at start,
	// incremented on every calibration version bump.
	ProfileGeneration uint64 `json:"profile_generation"`
	// Fleet is the probed replica set (coordinators only): one entry per
	// configured replica with its health state and breaker state, plus
	// the snapshot version that increments on every transition.
	Fleet *FleetHealth `json:"fleet,omitempty"`
	// Snapshot reports the cache snapshot subsystem (preheat, background
	// writer, peer warming): the last snapshot's hash, age and entry
	// counts plus the load/save/reject totals.
	Snapshot *SnapshotHealth `json:"snapshot,omitempty"`
}

// FleetHealth is the coordinator's replica-set view in /healthz.
type FleetHealth struct {
	Version  uint64               `json:"version"`
	Replicas []FleetReplicaHealth `json:"replicas"`
}

// FleetReplicaHealth is one replica's health and breaker state.
type FleetReplicaHealth struct {
	URL     string `json:"url"`
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	// LastError is the most recent probe failure, empty while healthy.
	LastError string `json:"last_error,omitempty"`
}

// HealthCache is the cache's counters in wire form.
type HealthCache struct {
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	HitRatio    float64 `json:"hit_ratio"`
	Entries     int     `json:"entries"`
	Collapsed   uint64  `json:"collapsed"`
	Evictions   uint64  `json:"evictions"`
	StaleServes uint64  `json:"stale_serves"`
	// Bytes is the resident size of cached response bodies.
	Bytes int64 `json:"bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Get()
	st := s.cache.Stats()
	var fleet *FleetHealth
	if snap := s.FleetHealth(); snap != nil {
		fleet = &FleetHealth{Version: snap.Version}
		for _, rep := range snap.Replicas {
			fleet.Replicas = append(fleet.Replicas, FleetReplicaHealth{
				URL:       rep.URL,
				State:     rep.State.String(),
				Breaker:   s.fleet.breakerFor(rep.URL).State().String(),
				LastError: rep.LastError,
			})
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       info.Version,
		Commit:        info.Commit,
		GoVersion:     info.GoVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workloads:     workloads.Names(),
		Inflight:      s.inflight.Value(),
		Cache: HealthCache{
			Hits: st.Hits, Misses: st.Misses, HitRatio: st.HitRatio(),
			Entries: st.Entries, Collapsed: st.Collapsed, Evictions: st.Evictions,
			StaleServes: st.StaleServes, Bytes: st.Bytes,
		},
		KernelTables:      s.tableBuilds.Value(),
		Breaker:           s.breaker.State().String(),
		DegradedResponses: s.degraded.Value(),
		PanicsRecovered:   s.panics.Value(),
		Draining:          s.draining.Load(),
		ProfileGeneration: s.calib.Generation(),
		Fleet:             fleet,
		Snapshot:          s.snapshotHealth(),
	})
}

// --- /readyz ---------------------------------------------------------

// ReadyResponse is the readiness probe body. Unlike /healthz (liveness:
// "the process is up and sane"), /readyz answers "should this instance
// receive new traffic" — it flips to 503 the moment graceful drain
// begins, while in-flight requests keep completing.
type ReadyResponse struct {
	Status string `json:"status"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready"})
}
