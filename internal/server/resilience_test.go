package server

// Resilience-path tests: readiness vs liveness during graceful drain,
// the circuit breaker on the enumerate compute path, degraded stale
// serving, and panic containment.

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"heteromix/internal/resilience"
)

func TestReadyzBeforeDrain(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := get(t, s, "/readyz")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if resp := decodeBody[ReadyResponse](t, rr); resp.Status != "ready" {
		t.Errorf("status %q, want ready", resp.Status)
	}
}

// TestDrainFlipsReadyzWhileInflightCompletes runs the daemon entrypoint
// against a real listener, parks a request in-flight, cancels the run
// context, and requires: /readyz answers 503 during the drain window
// while /healthz stays 200, and the parked request still completes 200.
func TestDrainFlipsReadyzWhileInflightCompletes(t *testing.T) {
	s := newTestServer(t, Options{DrainDelay: time.Second, ShutdownGrace: 5 * time.Second})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s.testHookStart = func(ep string) {
		if ep == "predict" {
			once.Do(func() { close(started) })
			<-gate
		}
	}

	runCtx, stop := context.WithCancel(context.Background())
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(runCtx, "127.0.0.1:0") }()

	// Wait for the listener to come up and advertise readiness.
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if addr := s.Addr(); addr != "" {
			base = "http://" + addr
			if resp, err := http.Get(base + "/readyz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Park one request in-flight.
	type result struct {
		code int
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/predict", "application/json",
			strings.NewReader(`{"workload":"ep","arm":{"nodes":1}}`))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{code: resp.StatusCode, body: string(b)}
	}()
	<-started

	// Begin the drain; readiness must flip to 503 while the listener is
	// still accepting (we get an HTTP answer, not a refused connection).
	stop()
	flipped := false
	for deadline := time.Now().Add(900 * time.Millisecond); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz unreachable during drain window: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("readyz never flipped to 503 during drain")
	}
	// Liveness is unchanged: the process is healthy, just not accepting
	// new work.
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	close(gate)
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK || !strings.Contains(res.body, "time_seconds") {
		t.Errorf("in-flight request: status %d body %s", res.code, res.body)
	}
	if err := <-runErr; err != nil {
		t.Errorf("Run: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() false after drain began")
	}
}

// TestEnumerateBreakerDegradedServing drives the enumerate compute path
// into repeated failure (request timeouts), and requires: each failure
// serves the expired cache entry marked degraded instead of an error,
// the breaker opens at the threshold, an open breaker still serves
// degraded from cache without computing, and a cold key under an open
// breaker answers 503 with Retry-After.
func TestEnumerateBreakerDegradedServing(t *testing.T) {
	s := newTestServer(t, Options{
		RequestTimeout:   30 * time.Millisecond,
		CacheTTL:         time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	const body = `{"workload":"ep","max_arm":3,"max_amd":2}`

	// Seed the cache with a good result.
	rr := post(t, s, "/v1/enumerate", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("seed request: %d %s", rr.Code, rr.Body)
	}
	fresh := rr.Body.String()
	time.Sleep(5 * time.Millisecond) // let the entry expire

	// Break the compute path: every enumerate stalls past the request
	// timeout before the handler runs, so the recompute fails on ctx.
	var stall sync.Mutex
	stalling := true
	s.testHookStart = func(ep string) {
		stall.Lock()
		on := stalling
		stall.Unlock()
		if on && ep == "enumerate" {
			time.Sleep(60 * time.Millisecond)
		}
	}
	for i := 0; i < 2; i++ {
		rr := post(t, s, "/v1/enumerate", body)
		if rr.Code != http.StatusOK {
			t.Fatalf("failing recompute %d: status %d %s (stale fallback expected)", i, rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Degraded") != "true" {
			t.Errorf("failing recompute %d: no X-Degraded header", i)
		}
		if resp := decodeBody[EnumerateResponse](t, rr); !resp.Degraded {
			t.Errorf("failing recompute %d: body not marked degraded: %s", i, rr.Body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.BreakerState(); st != resilience.Open {
		t.Fatalf("breaker %v after %d consecutive failures, want open", st, 2)
	}

	// With the breaker open, the dependency is no longer even tried:
	// the stall is off, yet the stale entry serves degraded.
	stall.Lock()
	stalling = false
	stall.Unlock()
	rr = post(t, s, "/v1/enumerate", body)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Degraded") != "true" {
		t.Fatalf("open-breaker request: %d degraded=%q", rr.Code, rr.Header().Get("X-Degraded"))
	}
	// The degraded body is the fresh body plus the flag.
	if want := strings.TrimSuffix(fresh, "}") + `,"degraded":true}`; rr.Body.String() != want {
		t.Errorf("degraded body:\n%s\nwant:\n%s", rr.Body, want)
	}

	// A cold key has nothing stale to stand in: open breaker → 503.
	rr = post(t, s, "/v1/enumerate", `{"workload":"ep","max_arm":2,"max_amd":1}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold key under open breaker: %d, want 503 (%s)", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("open-breaker 503 without Retry-After")
	}

	// Health reflects all of it.
	h := decodeBody[HealthResponse](t, get(t, s, "/healthz"))
	if h.Breaker != "open" {
		t.Errorf("healthz breaker = %q, want open", h.Breaker)
	}
	if h.DegradedResponses < 3 {
		t.Errorf("degraded_responses = %d, want >= 3", h.DegradedResponses)
	}
	if h.Cache.StaleServes < 3 {
		t.Errorf("stale_serves = %d, want >= 3", h.Cache.StaleServes)
	}
}

// TestPanicContainedByRecoveryMiddleware: a panicking handler yields a
// contained 500 and a counted panic — never a dead daemon.
func TestPanicContainedByRecoveryMiddleware(t *testing.T) {
	s := newTestServer(t, Options{})
	s.testHookStart = func(ep string) {
		if ep == "predict" {
			panic("test: handler bug")
		}
	}
	rr := post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want contained 500", rr.Code)
	}
	if got := s.reg.Snapshot()["heteromixd_panics_recovered_total"]; got != 1 {
		t.Errorf("panics counter = %v, want 1", got)
	}
	// The server keeps serving.
	s.testHookStart = nil
	if rr := post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`); rr.Code != http.StatusOK {
		t.Errorf("request after contained panic: %d", rr.Code)
	}
}

func TestMarkDegraded(t *testing.T) {
	cases := map[string]string{
		`{"a":1}`:        `{"a":1,"degraded":true}`,
		`{}`:             `{"degraded":true}`,
		`{"a":1}` + "\n": `{"a":1,"degraded":true}`,
		`[1,2]`:          `[1,2]`, // non-object passes through untouched
	}
	for in, want := range cases {
		if got := string(markDegraded([]byte(in))); got != want {
			t.Errorf("markDegraded(%q) = %q, want %q", in, got, want)
		}
	}
}

// The chaos middleware only wraps limited (/v1) endpoints, and its
// injected errors carry the X-Chaos marker so operators can tell chaos
// from organic failure.
func TestChaosOnlyWrapsLimitedEndpoints(t *testing.T) {
	s := newTestServer(t, Options{Chaos: resilience.ChaosOptions{ErrorProb: 1, Seed: 3}})
	rr := post(t, s, "/v1/predict", `{"workload":"ep","arm":{"nodes":1}}`)
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("X-Chaos") != "error" {
		t.Errorf("chaos error injection: %d X-Chaos=%q", rr.Code, rr.Header().Get("X-Chaos"))
	}
	// healthz and readyz are outside the blast radius.
	if rr := get(t, s, "/healthz"); rr.Code != http.StatusOK {
		t.Errorf("healthz under chaos: %d", rr.Code)
	}
	if rr := get(t, s, "/readyz"); rr.Code != http.StatusOK {
		t.Errorf("readyz under chaos: %d", rr.Code)
	}
	if got := s.reg.Snapshot()[`heteromixd_chaos_injections_total{kind="error"}`]; got != 1 {
		t.Errorf("chaos injection counter = %v, want 1", got)
	}
}
