package server

// The /v1/batch endpoint: a heterogeneous batch of predict, queueing
// and budget items executed on a bounded worker pool, answering one
// HTTP round trip with per-item results in request order. The item
// bodies are byte-identical to what the corresponding single endpoint
// would write (pinned by TestBatchBitIdenticalToSingles): items share
// the same normalize/compute helpers, the same result cache and — the
// amortization lever — the same compiled kernel-table cache, so a batch
// over one cluster builds its table at most once regardless of item
// count.
//
// Error contract: envelope-level problems (undecodable body, no items,
// more than MaxBatchItems) are a 400 for the whole batch, like every
// other endpoint; one bad item never fails the batch — it yields a 200
// whose item carries the error object and the status the single
// endpoint would have answered.
//
// The response is assembled in a single pass over a pooled buffer: the
// pre-marshaled item bodies are spliced into the envelope and written
// once, with no envelope-level re-marshal and no marshal-then-copy
// double write.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"heteromix/internal/resilience"
)

// BatchItem is one request of a batch.
type BatchItem struct {
	// Kind selects the endpoint semantics: "predict", "queueing" or
	// "budget".
	Kind string `json:"kind"`
	// Request is the item's request body, exactly as the single endpoint
	// would receive it.
	Request json.RawMessage `json:"request"`
}

// BatchRequest is a heterogeneous batch of items.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// batchResult is one computed item before splicing: the status and body
// the single endpoint would have answered, plus the cache disposition.
type batchResult struct {
	status int
	cached bool
	body   []byte
}

// respBufPool recycles response-assembly buffers across requests.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBody marshals v through a pooled buffer and returns a
// right-sized copy. Unlike json.Marshal on a cold encoder, a recycled
// buffer that has served a large enumeration once is already grown, so
// big response bodies encode in a single pass with no intermediate
// growth copies. The output is byte-identical to json.Marshal's.
func encodeBody(v any) ([]byte, error) {
	buf := respBufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); respBufPool.Put(buf) }()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	// Encoder appends a newline Marshal does not; drop it so cached
	// bodies keep the Marshal byte form.
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	return append(make([]byte, 0, len(b)), b...), nil
}

// decodeItem mirrors decode's strictness for a batch item's embedded
// request: unknown fields and trailing garbage are client errors. The
// error text matches the single endpoint's 400 body for the same input.
func decodeItem[T any](raw json.RawMessage) (T, error) {
	var req T
	if len(raw) == 0 {
		return req, badRequestf("invalid request body: request is required")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, badRequestf("invalid request body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, badRequestf("invalid request body: trailing data")
	}
	return req, nil
}

// errorStatus maps an item error to the status the single endpoint
// would answer, mirroring replyError without a ResponseWriter.
func errorStatus(err error) int {
	var br badRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.As(err, new(errProfileConflict)):
		return http.StatusConflict
	case errors.Is(err, resilience.ErrOpen), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorResult renders err as the item's result, with the same JSON
// error body writeError produces.
func errorResult(err error) batchResult {
	b, mErr := json.Marshal(errorResponse{Error: err.Error()})
	if mErr != nil {
		b = []byte(`{"error":"encoding failure"}`)
	}
	return batchResult{status: errorStatus(err), body: b}
}

// runItem answers one item, memoizing successful bodies on the item's
// raw bytes. The raw layer is what makes a warm batch cheap: a repeated
// item skips JSON decode, validation and canonicalization entirely and
// serves the memoized body in one cache probe. Correctness is
// inherited, not re-proven — a raw miss computes through the exact
// single-endpoint path (which canonicalizes and consults the canonical
// result cache), so every raw entry's body is the canonical answer for
// those bytes; distinct spellings of equivalent requests cost extra
// entries in the bounded LRU, never extra compute beyond the first
// sighting. Errors are never cached: a failed item recomputes on every
// sighting, like everywhere else in the server.
//
// Raw bytes never reveal their workload without a decode, so raw keys
// cannot carry a per-workload profile tag; they carry the global
// profile generation instead — any bump anywhere retires every raw
// entry, the coarse but always-correct tier of invalidation.
func (s *Server) runItem(it BatchItem) batchResult {
	var innerCached bool
	key := "batchraw|g" + strconv.FormatUint(s.calib.Generation(), 10) + "|" + it.Kind + "|" + string(it.Request)
	v, cached, err := s.cache.Do(key, func() (any, error) {
		body, c, err := s.computeItem(it)
		innerCached = c
		return body, err
	})
	if err != nil {
		return errorResult(err)
	}
	return batchResult{status: http.StatusOK, cached: cached || innerCached, body: v.([]byte)}
}

// computeItem computes one item exactly as its single endpoint would.
func (s *Server) computeItem(it BatchItem) ([]byte, bool, error) {
	switch it.Kind {
	case "predict":
		req, err := decodeItem[PredictRequest](it.Request)
		if err != nil {
			return nil, false, err
		}
		norm, cfg, err := s.normalizePredict(req)
		if err != nil {
			return nil, false, err
		}
		return s.predictBytes(norm, cfg)
	case "queueing":
		req, err := decodeItem[QueueingRequest](it.Request)
		if err != nil {
			return nil, false, err
		}
		resp, err := queueingResult(req)
		if err != nil {
			return nil, false, err
		}
		// Queueing is pure arithmetic on the request alone, so memoizing
		// its body in the raw layer cannot serve anything a fresh compute
		// would not produce.
		body, err := json.Marshal(resp)
		return body, false, err
	case "budget":
		req, err := decodeItem[BudgetRequest](it.Request)
		if err != nil {
			return nil, false, err
		}
		norm, err := s.normalizeBudget(req)
		if err != nil {
			return nil, false, err
		}
		return s.budgetBytes(norm)
	default:
		return nil, false, badRequestf("unknown kind %q (one of predict, queueing, budget)", it.Kind)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[BatchRequest](s, w, r)
	if !ok {
		return
	}
	if len(req.Items) == 0 {
		replyError(w, r, badRequestf("items is required (1 to %d entries)", s.opts.MaxBatchItems))
		return
	}
	if len(req.Items) > s.opts.MaxBatchItems {
		replyError(w, r, badRequestf("at most %d items per batch, got %d", s.opts.MaxBatchItems, len(req.Items)))
		return
	}
	// A batch whose items all address one workload routes to that
	// workload's consistent-hash owner as a unit (mixed-workload batches
	// compute locally — splitting them would break the one-round-trip
	// contract).
	if s.ring != nil {
		if wl, ok := batchWorkload(req.Items); ok && s.routeForward(w, r, "/v1/batch", wl, req) {
			return
		}
	}

	// Bounded worker pool over an atomic cursor; results land by index,
	// so the response order is the request order no matter which worker
	// finishes first.
	results := make([]batchResult, len(req.Items))
	workers := s.opts.BatchWorkers
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	ctx := r.Context()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(req.Items) {
					return
				}
				if err := ctx.Err(); err != nil {
					// The request deadline covers the whole batch; items the
					// pool never reaches answer 503 rather than burn CPU.
					results[i] = errorResult(err)
					continue
				}
				results[i] = s.runItem(req.Items[i])
			}
		}()
	}
	wg.Wait()

	s.batchItems.Add(uint64(len(req.Items)))
	itemErrors := 0
	for _, res := range results {
		if res.status >= 400 {
			itemErrors++
		}
	}
	s.batchErrors.Add(uint64(itemErrors))

	buf := respBufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); respBufPool.Put(buf) }()
	buf.WriteString(`{"items":[`)
	for i, res := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(`{"kind":`)
		switch k := req.Items[i].Kind; k {
		case "predict", "queueing", "budget":
			buf.WriteByte('"')
			buf.WriteString(k)
			buf.WriteByte('"')
		default:
			// An unknown kind is client-supplied free text; marshal it
			// rather than splicing it into the envelope.
			kindJSON, err := json.Marshal(k)
			if err != nil {
				kindJSON = []byte(`""`)
			}
			buf.Write(kindJSON)
		}
		buf.WriteString(`,"status":`)
		buf.WriteString(strconv.Itoa(res.status))
		if res.cached {
			buf.WriteString(`,"cached":true`)
		}
		buf.WriteString(`,"body":`)
		buf.Write(res.body)
		buf.WriteByte('}')
	}
	buf.WriteString(`],"errors":`)
	buf.WriteString(strconv.Itoa(itemErrors))
	buf.WriteByte('}')

	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}
