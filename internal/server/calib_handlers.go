package server

// The online calibration endpoints and the bump-driven cache
// invalidation.
//
//	POST /v1/fit       ingest observed (workload, node, config, T, E)
//	                   samples; drift past the threshold auto-refits
//	GET  /v1/profiles  the active profiles: versions, hashes, drift
//
// Versioning makes invalidation clean: every result-cache and
// table-cache key embeds "<workload>@v<version>", so the instant a
// refit bumps the version no new request can resolve to an old key —
// onProfileBump's sweep reclaims the memory, it does not carry the
// correctness. Raw batch-item keys, which cannot see a workload without
// decoding, carry the global generation instead and are retired
// wholesale on any bump.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"heteromix/internal/calib"
	"heteromix/internal/hwsim"
)

// maxMeasurement bounds accepted time/energy observations; beyond this
// the arithmetic still works but the measurement is nonsense.
const maxMeasurement = 1e12

// errProfileConflict is a request pinned to a profile version this
// server is not serving — answered 409 so the caller re-reads the
// active version and retries; never a 5xx.
type errProfileConflict struct {
	Workload   string
	Want, Have uint64
}

func (e errProfileConflict) Error() string {
	return fmt.Sprintf("profile version conflict: request pinned %s@v%d, active is v%d",
		e.Workload, e.Want, e.Have)
}

// FitSample is one observed execution in wire form.
type FitSample struct {
	// Cores and GHz select the configuration the job ran under; 0 means
	// the node's maximum, and GHz snaps to an exact P-state exactly as
	// /v1/predict's groups do.
	Cores int     `json:"cores,omitempty"`
	GHz   float64 `json:"ghz,omitempty"`
	// Work is the job size in work units; 0 selects the workload's
	// analysis size.
	Work float64 `json:"work,omitempty"`
	// TimeSeconds and EnergyJoules are the measurements. Required,
	// positive, finite.
	TimeSeconds  float64 `json:"time_seconds"`
	EnergyJoules float64 `json:"energy_joules"`
}

// FitRequest is a batch of observations for one (workload, node) pair.
type FitRequest struct {
	Workload string      `json:"workload"`
	Node     string      `json:"node"`
	Samples  []FitSample `json:"samples"`
}

// FitResponse reports the ingest outcome: drift before and after, and
// whether a refit was installed under a bumped version.
type FitResponse struct {
	Workload string `json:"workload"`
	Node     string `json:"node"`
	calib.IngestResult
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[FitRequest](s, w, r)
	if !ok {
		return
	}
	samples, err := s.validateFit(&req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	res, err := s.calib.Ingest(req.Workload, req.Node, samples)
	if err != nil {
		// Every ingest failure is a property of the client's samples: a
		// config the model cannot evaluate, a pair the source cannot
		// model. 400, never 500.
		if errors.Is(err, calib.ErrBadSample) || errors.Is(err, calib.ErrUnknownNode) {
			replyError(w, r, badRequestf("%v", err))
			return
		}
		replyError(w, r, err)
		return
	}
	s.calibSamples.Add(uint64(res.Accepted))
	if res.Refit {
		s.calibRefits.Inc()
	}
	s.calibDrift.Set(int64(s.calib.MaxDrift() * 1e6))
	writeJSON(w, http.StatusOK, FitResponse{Workload: req.Workload, Node: req.Node, IngestResult: res})
}

// validateFit checks the request shell and canonicalizes every sample —
// cores/frequency resolved against the node spec through the same
// resolveGroup as every other endpoint, work defaulted from the
// workload, measurements bounded — before anything reaches the
// registry.
func (s *Server) validateFit(req *FitRequest) ([]calib.Sample, error) {
	_, defWork, err := validWorkload(req.Workload, 0)
	if err != nil {
		return nil, err
	}
	spec, err := hwsim.ByName(req.Node)
	if err != nil {
		return nil, badRequestf("node: %v", err)
	}
	if len(req.Samples) == 0 {
		return nil, badRequestf("samples is required (1 to %d entries)", s.opts.MaxFitBatch)
	}
	if len(req.Samples) > s.opts.MaxFitBatch {
		return nil, badRequestf("at most %d samples per fit request, got %d", s.opts.MaxFitBatch, len(req.Samples))
	}
	out := make([]calib.Sample, len(req.Samples))
	for i, fs := range req.Samples {
		side := fmt.Sprintf("samples[%d]", i)
		g, _, err := s.resolveGroup(side, GroupRequest{Nodes: 1, Cores: fs.Cores, GHz: fs.GHz}, spec)
		if err != nil {
			return nil, err
		}
		work := fs.Work
		if work == 0 {
			work = defWork
		}
		if math.IsNaN(work) || math.IsInf(work, 0) || work <= 0 || work > maxWork {
			return nil, badRequestf("%s.work must be in (0, %g], got %v", side, maxWork, fs.Work)
		}
		if math.IsNaN(fs.TimeSeconds) || math.IsInf(fs.TimeSeconds, 0) || fs.TimeSeconds <= 0 || fs.TimeSeconds > maxMeasurement {
			return nil, badRequestf("%s.time_seconds must be in (0, %g], got %v", side, float64(maxMeasurement), fs.TimeSeconds)
		}
		if math.IsNaN(fs.EnergyJoules) || math.IsInf(fs.EnergyJoules, 0) || fs.EnergyJoules <= 0 || fs.EnergyJoules > maxMeasurement {
			return nil, badRequestf("%s.energy_joules must be in (0, %g], got %v", side, float64(maxMeasurement), fs.EnergyJoules)
		}
		out[i] = calib.Sample{
			Cores:        g.Cores,
			GHz:          g.GHz,
			Work:         work,
			TimeSeconds:  fs.TimeSeconds,
			EnergyJoules: fs.EnergyJoules,
		}
	}
	return out, nil
}

// ProfilesResponse is GET /v1/profiles: the active profile per known
// (workload, node) pair with its fit quality and drift.
type ProfilesResponse struct {
	// Generation is the global profile generation (see /healthz).
	Generation uint64 `json:"generation"`
	// RefitThreshold is the drift level that triggers automatic refits.
	RefitThreshold float64        `json:"refit_threshold"`
	Profiles       []calib.Status `json:"profiles"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ProfilesResponse{
		Generation:     s.calib.Generation(),
		RefitThreshold: s.opts.RefitThreshold,
		Profiles:       s.calib.Statuses(),
	})
}

// onProfileBump runs after every profile version bump (refit, install,
// operator push), outside the registry lock. It sweeps both caches for
// entries keyed under the retired version — results and compiled tables
// tagged "|<workload>@v<old>|", raw batch entries of any generation but
// the new one — and persists the snapshot when one is configured.
// Correctness does not depend on the sweep: keys embed the version, so
// retired entries are already unreachable; the sweep reclaims their
// memory and keeps the LRU from carrying dead weight.
func (s *Server) onProfileBump(ev calib.BumpEvent) {
	oldTag := "|" + ev.Workload + "@v" + strconv.FormatUint(ev.OldVersion, 10) + "|"
	genPrefix := "batchraw|g" + strconv.FormatUint(ev.NewGeneration, 10) + "|"
	n := s.cache.DeleteFunc(func(key string) bool {
		if strings.Contains(key, oldTag) {
			return true
		}
		return strings.HasPrefix(key, "batchraw|") && !strings.HasPrefix(key, genPrefix)
	})
	n += s.tables.DeleteFunc(func(key string) bool {
		return strings.Contains(key, oldTag)
	})
	s.calibInvalid.Add(uint64(n))
	if s.opts.ProfileSnapshot != "" {
		if err := s.calib.SaveSnapshotFile(s.opts.ProfileSnapshot); err != nil {
			s.calibSnapErrors.Inc()
		}
	}
}

// ProfileRegistry exposes the calibration registry (operator installs,
// tests, benchmarks).
func (s *Server) ProfileRegistry() *calib.Registry { return s.calib }
