package server

// Benchmarks for the online-calibration subsystem, the make bench-fit
// gate. BenchmarkFitRefit is the refit latency: one /v1/fit ingest
// whose drift crosses the threshold, so every iteration pays the full
// loop — validation, drift measurement, least-squares refit from the
// base model, version bump and both cache sweeps. The WarmPredict pair
// bounds what a bump costs the serving path: steady-state warm hits
// versus the first predict after every bump (table recompile + result
// recompute), the price one invalidation extracts from one request.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"heteromix/internal/hwsim"
)

// BenchmarkFitRefit measures one drift-triggered refit end to end
// through the HTTP handler. Alternating the observed scale between
// iterations (1.5x, then 1.0x) keeps the active model wrong every time,
// so every ingest re-crosses the threshold and installs a new profile.
func BenchmarkFitRefit(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	bodies := [2]string{
		fitBodyScaled(b, "ep", "arm-cortex-a9", 1.5, 1.3),
		fitBodyScaled(b, "ep", "arm-cortex-a9", 1.0, 1.0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	refits := 0
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/fit", strings.NewReader(bodies[i%2]))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body)
		}
		if strings.Contains(rr.Body.String(), `"refit":true`) {
			refits++
		}
	}
	b.StopTimer()
	if b.N > 1 && refits == 0 {
		b.Fatal("no iteration refit — the benchmark measured plain ingest")
	}
}

// BenchmarkWarmPredictSteadyState is the baseline the bump benchmark is
// read against: the same predict served entirely from the result cache.
func BenchmarkWarmPredictSteadyState(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	const body = `{"workload":"ep","arm":{"nodes":2}}`
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), req) // prewarm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d", rr.Code)
		}
	}
}

// BenchmarkWarmPredictAfterBump installs a perturbed profile before
// every predict, so each iteration pays the post-invalidation cold
// path: version-bumped key, table recompile, fresh computation. The
// delta against SteadyState is the per-request cost of a profile bump.
func BenchmarkWarmPredictAfterBump(b *testing.B) {
	s, _ := benchServer(b)
	h := s.Handler()
	const body = `{"workload":"ep","arm":{"nodes":2}}`
	spec := hwsim.ARMCortexA9()
	base, err := testSuite().Model("ep", spec)
	if err != nil {
		b.Fatal(err)
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate between two distinct hashes so every Install bumps.
		nm := base
		nm.Profile.InstructionsPerUnit *= 1.01 + 0.01*float64(i%2)
		if _, err := s.calib.Install("ep", spec.Name, nm, "bench"); err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body)
		}
		if c := rr.Header().Get("X-Cache"); c != "miss" {
			b.Fatalf("iteration served %q — the bump did not invalidate", c)
		}
	}
}
