package server

import (
	"net/http"
	"strings"
	"testing"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/isa"
)

// triBody is the canonical 3-type request the tests drive.
const triBody = `{"workload":"ep","types":[
	{"node":"arm-cortex-a9","max_nodes":2,"needs_switch":true},
	{"node":"arm-cortex-a15","max_nodes":2,"needs_switch":true},
	{"node":"amd-opteron-k10","max_nodes":2}]`

// triGroupTypes resolves the same types directly through the suite, the
// ground truth the endpoint must reproduce.
func triGroupTypes(t *testing.T) []cluster.GroupType {
	t.Helper()
	suite := testSuite()
	var out []cluster.GroupType
	for _, spec := range []hwsim.NodeSpec{hwsim.ARMCortexA9(), hwsim.ARMCortexA15(), hwsim.AMDOpteronK10()} {
		nm, err := suite.Model("ep", spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cluster.GroupType{Model: nm, MaxNodes: 2, NeedsSwitch: spec.ISA == isa.ARMv7A})
	}
	return out
}

func TestEnumerateGenericFrontierMatchesDirect(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[EnumerateGenericResponse](t, rr)

	types := triGroupTypes(t)
	if want := cluster.GenericSpaceSize(types); resp.SpaceSize != want {
		t.Errorf("space_size = %d, want %d", resp.SpaceSize, want)
	}
	if resp.PrunedSize == 0 || resp.PrunedSize >= resp.SpaceSize {
		t.Errorf("pruned_size = %d out of %d: pruning did not shrink the space",
			resp.PrunedSize, resp.SpaceSize)
	}
	pruned, err := cluster.PruneGroupTypes(types)
	if err != nil {
		t.Fatal(err)
	}
	pts, tes, err := cluster.GenericFrontierOf(pruned, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Returned != len(tes) || len(resp.Points) != len(tes) {
		t.Fatalf("returned %d frontier points, want %d", resp.Returned, len(tes))
	}
	for i, p := range resp.Points {
		if p.TimeSeconds != tes[i].Time || p.EnergyJoules != tes[i].Energy {
			t.Errorf("point %d = (%v, %v), want (%v, %v)",
				i, p.TimeSeconds, p.EnergyJoules, tes[i].Time, tes[i].Energy)
		}
		if want := pts[i].Summary([]string{"arm-cortex-a9", "arm-cortex-a15", "amd-opteron-k10"}); p.Label != want.Label {
			t.Errorf("point %d label %q, want %q", i, p.Label, want.Label)
		}
	}

	// The identical request must come back from cache.
	rr = post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat request: status %d, X-Cache %q", rr.Code, rr.Header().Get("X-Cache"))
	}
	// frontier_only implies prune, so the explicit form shares the entry.
	rr = post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true,"prune":true}`)
	if rr.Header().Get("X-Cache") != "hit" {
		t.Error("frontier_only should canonicalize onto the pruned cache key")
	}
}

func TestEnumerateGenericPointsAndTruncation(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := post(t, s, "/v1/enumerate-generic", triBody+`,"limit":25}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	resp := decodeBody[EnumerateGenericResponse](t, rr)
	if resp.Returned != 25 || !resp.Truncated {
		t.Fatalf("returned %d truncated=%v, want 25 truncated", resp.Returned, resp.Truncated)
	}
	if resp.PrunedSize != 0 {
		t.Errorf("unpruned request reports pruned_size %d", resp.PrunedSize)
	}
	// The first points are the head of the direct enumeration's order.
	types := triGroupTypes(t)
	i := 0
	err := cluster.EnumerateGroupsFunc(types, 50e6, func(p cluster.GenericPoint) bool {
		got := resp.Points[i]
		want := p.Summary([]string{"arm-cortex-a9", "arm-cortex-a15", "amd-opteron-k10"})
		if got.TimeSeconds != want.TimeSeconds || got.EnergyJoules != want.EnergyJoules || got.Label != want.Label {
			t.Fatalf("point %d = %+v, want %+v", i, got, want)
		}
		i++
		return i < resp.Returned
	})
	if err != nil {
		t.Fatal(err)
	}

	// Work fractions of used groups always sum to 1.
	for _, p := range resp.Points {
		sum := 0.0
		for _, g := range p.Groups {
			if g.Nodes <= 0 {
				t.Fatalf("absent type leaked into groups: %+v", p)
			}
			sum += g.WorkFraction
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("work fractions sum to %v: %+v", sum, p)
		}
	}
}

func TestEnumerateGenericMetrics(t *testing.T) {
	s := newTestServer(t, Options{})
	if rr := post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`); rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if s.genericPoints.Value() == 0 {
		t.Error("generic_points_evaluated_total not incremented")
	}
	if s.genericPruned.Value() == 0 {
		t.Error("generic_points_pruned_total not incremented")
	}
	evaluated := s.genericPoints.Value()
	// A cache hit must not re-run the enumeration.
	if rr := post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`); rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if got := s.genericPoints.Value(); got != evaluated {
		t.Errorf("cache hit re-evaluated: %d -> %d", evaluated, got)
	}
}

func TestEnumerateGenericRejections(t *testing.T) {
	s := newTestServer(t, Options{MaxNodes: 12, MaxGenericSpace: 100_000})
	cases := []struct {
		name, body string
	}{
		{"empty types", `{"workload":"ep","types":[]}`},
		{"missing types", `{"workload":"ep"}`},
		{"unknown node", `{"workload":"ep","types":[{"node":"intel-xeon","max_nodes":2}]}`},
		{"negative max_nodes", `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":-1}]}`},
		{"max_nodes over bound", `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":13}]}`},
		{"all zero", `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":0}]}`},
		{"negative limit", `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"limit":-1}`},
		{"unknown workload", `{"workload":"nope","types":[{"node":"arm-cortex-a9","max_nodes":1}]}`},
		{"unknown field", `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"bogus":1}`},
		{"space guard", `{"workload":"ep","types":[
			{"node":"arm-cortex-a9","max_nodes":12},
			{"node":"arm-cortex-a15","max_nodes":12},
			{"node":"amd-opteron-k10","max_nodes":12}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := post(t, s, "/v1/enumerate-generic", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", rr.Code, rr.Body)
			}
			e := decodeBody[errorResponse](t, rr)
			if e.Error == "" {
				t.Fatal("400 without a JSON error body")
			}
		})
	}
	// Every rejection fired before any enumeration ran.
	if n := s.genericPoints.Value(); n != 0 {
		t.Errorf("rejected requests evaluated %d points", n)
	}
}

func TestEnumerateGenericSpaceGuardAdmitsPrunedForm(t *testing.T) {
	// The same bounds that trip the guard un-pruned fit within it after
	// domination pruning — the guard applies to the walked space.
	types := triGroupTypes(t)
	pruned, err := cluster.PruneGroupTypes(types)
	if err != nil {
		t.Fatal(err)
	}
	full := cluster.GenericSpaceSize(types)
	reduced := cluster.GenericSpaceSize(pruned)
	bound := (full + reduced) / 2
	s := newTestServer(t, Options{MaxGenericSpace: bound})

	if rr := post(t, s, "/v1/enumerate-generic", triBody+`}`); rr.Code != http.StatusBadRequest {
		t.Fatalf("unpruned space of %d (bound %d): status %d, want 400", full, bound, rr.Code)
	}
	rr := post(t, s, "/v1/enumerate-generic", triBody+`,"prune":true}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("pruned space of %d (bound %d): status %d: %s", reduced, bound, rr.Code, rr.Body)
	}
	resp := decodeBody[EnumerateGenericResponse](t, rr)
	if resp.PrunedSize != reduced {
		t.Errorf("pruned_size = %d, want %d", resp.PrunedSize, reduced)
	}
}

func TestHealthzAndMetricsExposeGenericCounters(t *testing.T) {
	s := newTestServer(t, Options{})
	if rr := post(t, s, "/v1/enumerate-generic", triBody+`,"frontier_only":true}`); rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	rr := get(t, s, "/metrics")
	body := rr.Body.String()
	for _, name := range []string{
		"heteromixd_generic_points_evaluated_total",
		"heteromixd_generic_points_pruned_total",
		`heteromixd_requests_total{endpoint="enumerate-generic"}`,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
