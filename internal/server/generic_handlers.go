package server

// The /v1/enumerate-generic endpoint: the N-type configuration space
// behind the same serving policy as /v1/enumerate — canonicalized
// requests as cache keys, TTL freshness with degraded-stale fallback,
// the circuit breaker on the compute path, and a size guard that
// rejects absurd spaces with a 400 before any enumeration runs.

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"heteromix/internal/cluster"
	"heteromix/internal/hwsim"
	"heteromix/internal/model"
	"heteromix/internal/pareto"
	"heteromix/internal/shard"
	"heteromix/internal/stream"
	"heteromix/internal/tablecache"
)

// NodeModelSource provides per-type fitted models for generic N-type
// requests. *experiments.Suite implements it; a ModelSource that does
// not cannot serve /v1/enumerate-generic.
type NodeModelSource interface {
	Model(workload string, spec hwsim.NodeSpec) (model.NodeModel, error)
}

// maxGenericTypes caps the type list: every additional type multiplies
// the space, and the paper's scenarios need at most a handful.
const maxGenericTypes = 8

// GenericTypeRequest selects one node type of a generic space.
type GenericTypeRequest struct {
	// Node names the hardware spec (e.g. "arm-cortex-a9",
	// "arm-cortex-a15", "amd-opteron-k10").
	Node string `json:"node"`
	// MaxNodes bounds this type's node count; 0 leaves the type out.
	MaxNodes int `json:"max_nodes"`
	// NeedsSwitch charges dedicated-switch power to this type's groups.
	NeedsSwitch bool `json:"needs_switch,omitempty"`
}

// EnumerateGenericRequest asks for a bounded N-type space.
type EnumerateGenericRequest struct {
	Workload string               `json:"workload"`
	Types    []GenericTypeRequest `json:"types"`
	Work     float64              `json:"work,omitempty"`
	// FrontierOnly returns just the Pareto-optimal points, streamed
	// through the online frontier over the domination-pruned space (the
	// pruned frontier provably equals the full one).
	FrontierOnly bool `json:"frontier_only,omitempty"`
	// Limit caps returned points when FrontierOnly is false (default
	// 1000, capped by the server's MaxPoints).
	Limit int `json:"limit,omitempty"`
	// Prune restricts each type to its (time, power) domination
	// survivors before enumeration. Implied by FrontierOnly.
	Prune bool `json:"prune,omitempty"`
	// Shard restricts this server's walk to slice "i/n" of the
	// Feistel-permuted space (see internal/shard). Requires
	// frontier_only; the response then carries per-point serial indices
	// so a coordinator can merge slices deterministically.
	Shard string `json:"shard,omitempty"`
	// Shards, when positive, makes this server a coordinator: the
	// request fans out as that many shard requests across the replica
	// set and the partial frontiers merge back bit-identical to an
	// unsharded walk. Requires frontier_only and a fleet-enabled server.
	// Mutually exclusive with Shard.
	Shards int `json:"shards,omitempty"`
	// Replicas overrides the configured replica URLs for one fan-out.
	// Only honored on a server that already has replicas configured, so
	// a non-fleet instance can never be steered into fetching arbitrary
	// URLs.
	Replicas []string `json:"replicas,omitempty"`
	// ProfileVersion, when positive, pins the request to that profile
	// version of its workload: a server whose active version differs
	// answers 409 (retryable) instead of silently computing under other
	// parameters. The fleet coordinator stamps its own version onto
	// every shard sub-request, so a profile bump racing a fan-out can
	// never merge slices computed under different profiles.
	ProfileVersion uint64 `json:"profile_version,omitempty"`
	// Delta asks a streamed frontier request to ship only the points
	// that entered or left the frontier since this client spec's
	// predecessor ({"op":"add"|"del"} records), falling back to a full
	// stream on the first query or after a profile bump. Requires
	// frontier_only and a streamed response; incompatible with shard
	// slices (a slice's frontier is not the spec's frontier).
	Delta bool `json:"delta,omitempty"`
}

// EnumerateGenericResponse carries the points (or frontier) of the
// generic space.
type EnumerateGenericResponse struct {
	Workload string  `json:"workload"`
	Work     float64 `json:"work"`
	// TypeNames labels Points' groups positionally.
	TypeNames []string `json:"type_names"`
	// SpaceSize is the full space; PrunedSize the enumerated one when
	// pruning was applied.
	SpaceSize  uint64 `json:"space_size"`
	PrunedSize uint64 `json:"pruned_size,omitempty"`
	// Returned is len(Points); Truncated marks a Limit cut.
	Returned     int                           `json:"returned"`
	Truncated    bool                          `json:"truncated,omitempty"`
	FrontierOnly bool                          `json:"frontier_only,omitempty"`
	Points       []cluster.GenericPointSummary `json:"points"`
	// Shard echoes a shard request's slice, and Indices carries each
	// point's index in the serial enumeration order (parallel to
	// Points) — the coordinator's merge key.
	Shard   string   `json:"shard,omitempty"`
	Indices []uint64 `json:"indices,omitempty"`
	// FailedShards lists the shard indices whose replicas failed when a
	// coordinator served a degraded partial merge.
	FailedShards []int `json:"failed_shards,omitempty"`
	// Degraded marks a stale result served because the recompute path
	// was failing, as in EnumerateResponse — or a fleet merge missing
	// the FailedShards slices.
	Degraded bool `json:"degraded,omitempty"`
}

// genericTables is the compiled artifact one generic cluster spec
// yields: the full table and its domination-pruned counterpart, built
// together so the prune flag never enters the cache key — a request
// with prune=true and one without share the artifact.
type genericTables struct {
	full, pruned *cluster.GenericTable
}

// SizeBytes implements tablecache.Artifact.
func (g *genericTables) SizeBytes() int {
	return g.full.SizeBytes() + g.pruned.SizeBytes()
}

// genericKey canonicalizes the cluster spec of a generic request —
// the workload's profile tag plus the positional (node, max_nodes,
// needs_switch) list — deliberately excluding every per-request
// parameter (work size, limit, prune and frontier flags), so repeated
// traffic against the same cluster shares one compiled artifact. The
// profile tag retires the artifact on a version bump.
func genericKey(profileTag string, types []GenericTypeRequest) string {
	var b strings.Builder
	b.WriteString("generic|")
	b.WriteString(profileTag)
	for _, tr := range types {
		fmt.Fprintf(&b, "|%s:%d:%t", tr.Node, tr.MaxNodes, tr.NeedsSwitch)
	}
	return b.String()
}

// genericTablesFor memoizes the compiled artifact for a cluster spec.
// Concurrent requests for the same cluster collapse onto one build, and
// build failures are never cached.
func (s *Server) genericTablesFor(workload string, reqTypes []GenericTypeRequest, full []cluster.GroupType) (*genericTables, error) {
	key := genericKey(s.profileTag(workload), reqTypes)
	v, _, err := s.tables.Do(key, func() (tablecache.Artifact, error) {
		prunedTypes, err := cluster.PruneGroupTypes(full)
		if err != nil {
			return nil, err
		}
		ft, err := cluster.NewGenericTable(full)
		if err != nil {
			return nil, err
		}
		pt, err := cluster.NewGenericTable(prunedTypes)
		if err != nil {
			return nil, err
		}
		s.tableBuilds.Add(2)
		return &genericTables{full: ft, pruned: pt}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*genericTables), nil
}

// genericPlan is the resolved, validated form of a request: the
// compiled tables to enumerate and the sizes the response reports.
type genericPlan struct {
	tables *genericTables
	// walk is the table the enumeration actually uses: the pruned one
	// under req.Prune (and so under frontier_only), the full one
	// otherwise.
	walk      *cluster.GenericTable
	names     []string
	spaceSize uint64
	// prunedSize is the enumerated size when pruning applied, else 0.
	prunedSize uint64
	// shard is the parsed slice of a shard request; Count 0 when
	// unsharded.
	shard shard.Shard
}

// enumeratedSize returns how many points the plan evaluates.
func (p genericPlan) enumeratedSize() uint64 {
	if p.prunedSize > 0 {
		return p.prunedSize
	}
	return p.spaceSize
}

// normalizeEnumerateGeneric validates and canonicalizes the request and
// resolves it to a plan. Every rejection — unknown nodes, negative or
// oversized bounds, a space past MaxGenericSpace — is a badRequest
// taken before any enumeration, so clients cannot buy arbitrary compute
// or trip the breaker with nonsense.
func (s *Server) normalizeEnumerateGeneric(req EnumerateGenericRequest) (EnumerateGenericRequest, genericPlan, error) {
	var plan genericPlan
	_, work, err := validWorkload(req.Workload, req.Work)
	if err != nil {
		return req, plan, err
	}
	req.Work = work
	// A pinned profile version must match the active one; a matched pin
	// canonicalizes away so pinned and unpinned requests share one cache
	// entry (they are computed under identical parameters).
	if req.ProfileVersion != 0 {
		if cur := s.calib.Version(req.Workload); req.ProfileVersion != cur {
			return req, plan, errProfileConflict{Workload: req.Workload, Want: req.ProfileVersion, Have: cur}
		}
		req.ProfileVersion = 0
	}
	if len(req.Types) == 0 {
		return req, plan, badRequestf("types is required (1 to %d entries)", maxGenericTypes)
	}
	if len(req.Types) > maxGenericTypes {
		return req, plan, badRequestf("at most %d types, got %d", maxGenericTypes, len(req.Types))
	}
	specs := make([]hwsim.NodeSpec, len(req.Types))
	total := 0
	for i, tr := range req.Types {
		spec, err := hwsim.ByName(tr.Node)
		if err != nil {
			return req, plan, badRequestf("types[%d].node: %v", i, err)
		}
		specs[i] = spec
		if tr.MaxNodes < 0 || tr.MaxNodes > s.opts.MaxNodes {
			return req, plan, badRequestf("types[%d].max_nodes must be in [0, %d], got %d",
				i, s.opts.MaxNodes, tr.MaxNodes)
		}
		total += tr.MaxNodes
	}
	if total == 0 {
		return req, plan, badRequestf("at least one types[].max_nodes must be positive")
	}
	if req.Limit < 0 {
		return req, plan, badRequestf("limit must be non-negative, got %d", req.Limit)
	}
	if req.FrontierOnly {
		// The pruned frontier equals the full frontier, so frontier
		// requests always take the pruned fast path; canonicalizing the
		// flag keeps the cache key shared with explicit prune=true.
		req.Prune = true
		req.Limit = 0
	} else {
		if req.Limit == 0 {
			req.Limit = 1000
		}
		if req.Limit > s.opts.MaxPoints {
			req.Limit = s.opts.MaxPoints
		}
	}
	// A replica started with -shard serves its slice for every frontier
	// request that did not ask for sharding itself.
	if req.Shard == "" && req.Shards == 0 && req.FrontierOnly && s.opts.DefaultShard.Count > 0 {
		req.Shard = s.opts.DefaultShard.String()
	}
	if req.Shard != "" {
		if req.Shards != 0 {
			return req, plan, badRequestf("shard and shards are mutually exclusive")
		}
		if !req.FrontierOnly {
			return req, plan, badRequestf("shard requires frontier_only")
		}
		sh, err := shard.Parse(req.Shard)
		if err != nil {
			return req, plan, badRequestf("%v", err)
		}
		plan.shard = sh
		req.Shard = sh.String()
	}
	if req.Delta {
		if !req.FrontierOnly {
			return req, plan, badRequestf("delta requires frontier_only")
		}
		if req.Shard != "" {
			return req, plan, badRequestf("delta is incompatible with shard slices")
		}
	}
	if req.Shards < 0 || req.Shards > maxFleetShards {
		return req, plan, badRequestf("shards must be in [0, %d], got %d", maxFleetShards, req.Shards)
	}
	if req.Shards > 0 && !req.FrontierOnly {
		return req, plan, badRequestf("shards requires frontier_only")
	}
	if len(req.Replicas) > 0 && req.Shards == 0 {
		return req, plan, badRequestf("replicas requires shards")
	}
	if req.Shards > 0 {
		// The fleet gate: fan-out — to configured or request-supplied
		// URLs — only on a server explicitly started as a coordinator.
		if len(s.opts.Replicas) == 0 {
			return req, plan, badRequestf("fleet mode is not enabled on this server (start with -replicas)")
		}
		if len(req.Replicas) > maxFleetReplicas {
			return req, plan, badRequestf("at most %d replicas, got %d", maxFleetReplicas, len(req.Replicas))
		}
		for i, u := range req.Replicas {
			if err := validReplicaURL(u); err != nil {
				return req, plan, badRequestf("replicas[%d]: %v", i, err)
			}
		}
	}

	if !s.genericOK {
		return req, plan, badRequestf("generic enumeration is not supported by this server's model source")
	}
	fullTypes := make([]cluster.GroupType, len(req.Types))
	plan.names = make([]string, len(req.Types))
	for i, tr := range req.Types {
		nm, err := s.calib.Model(req.Workload, specs[i])
		if err != nil {
			return req, plan, err
		}
		fullTypes[i] = cluster.GroupType{
			Model:       nm,
			MaxNodes:    tr.MaxNodes,
			NeedsSwitch: tr.NeedsSwitch,
		}
		plan.names[i] = tr.Node
	}
	// Table compilation is cheap (cost ∝ option count, not space size)
	// and amortized across requests by the table cache, so it runs before
	// the size guard: the guard protects enumeration, not compilation.
	plan.tables, err = s.genericTablesFor(req.Workload, req.Types, fullTypes)
	if err != nil {
		return req, plan, err
	}
	plan.spaceSize = plan.tables.full.Size()
	plan.walk = plan.tables.full
	if req.Prune {
		plan.prunedSize = plan.tables.pruned.Size()
		plan.walk = plan.tables.pruned
	}
	// The guard applies to the space that would actually be walked, so a
	// pruned request may be admitted where its full form is refused.
	if size := plan.enumeratedSize(); size > s.opts.MaxGenericSpace {
		return req, plan, badRequestf(
			"generic space of %d points exceeds the server bound %d; lower max_nodes or set prune/frontier_only",
			size, s.opts.MaxGenericSpace)
	}
	return req, plan, nil
}

// shardFrontier walks this server's slice of the plan's space through
// an order-independent indexed frontier (duplicates resolve toward the
// smallest serial index, so the coordinator's merge is deterministic),
// polling for cancellation at the same coarse interval as every other
// enumeration walk. walked reports how many points were evaluated.
func (s *Server) shardFrontier(ctx context.Context, plan genericPlan, req EnumerateGenericRequest) (sf cluster.ShardFrontier[cluster.GenericPoint], walked uint64, err error) {
	tr := pareto.TrackedIndexed[cluster.GenericPoint]{Clone: cluster.GenericPoint.Clone}
	n := 0
	var insErr error
	err = plan.walk.ForEachShard(req.Work, plan.shard, func(p cluster.GenericPoint, idx uint64) bool {
		n++
		if n&0x1fff == 0 && ctx.Err() != nil {
			return false
		}
		if _, err := tr.Insert(pareto.TE{Time: float64(p.Time), Energy: float64(p.Energy)}, idx, p); err != nil {
			insErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = insErr
	}
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err != nil {
		return sf, 0, err
	}
	pts, tes, idxs := tr.Frontier()
	return cluster.ShardFrontier[cluster.GenericPoint]{Points: pts, TEs: tes, Indices: idxs}, uint64(n), nil
}

// genericBytes returns the marshaled response for a canonicalized
// request, with /v1/enumerate's breaker + freshness semantics.
func (s *Server) genericBytes(r *http.Request, req EnumerateGenericRequest, plan genericPlan) (body []byte, cached, degraded bool, err error) {
	key, keyed := s.versionedKey("enumerate-generic", req.Workload, req)
	ctx := r.Context()
	v, cached, stale, err := s.doFresh(key, keyed, func() (any, error) {
		var out []byte
		berr := s.breaker.Do(func() error {
			resp := EnumerateGenericResponse{
				Workload:     req.Workload,
				Work:         req.Work,
				TypeNames:    plan.names,
				SpaceSize:    plan.spaceSize,
				PrunedSize:   plan.prunedSize,
				FrontierOnly: req.FrontierOnly,
			}
			if plan.shard.Count > 0 {
				sf, walked, err := s.shardFrontier(ctx, plan, req)
				if err != nil {
					return err
				}
				s.genericPoints.Add(walked)
				resp.Shard = req.Shard
				resp.Points = make([]cluster.GenericPointSummary, len(sf.Points))
				for i, p := range sf.Points {
					resp.Points[i] = p.Summary(plan.names)
				}
				resp.Indices = sf.Indices
			} else if req.FrontierOnly {
				pts, _, err := plan.walk.FrontierParallel(req.Work, 0)
				if err != nil {
					return err
				}
				s.genericPoints.Add(plan.enumeratedSize())
				resp.Points = make([]cluster.GenericPointSummary, len(pts))
				for i, p := range pts {
					resp.Points[i] = p.Summary(plan.names)
				}
			} else {
				resp.Points = make([]cluster.GenericPointSummary, 0, req.Limit)
				n := 0
				err := plan.walk.ForEach(req.Work, func(p cluster.GenericPoint) bool {
					// Pure arithmetic walk: poll for cancellation at coarse
					// intervals, as in enumerateBytes.
					n++
					if n&0x1fff == 0 && ctx.Err() != nil {
						return false
					}
					if len(resp.Points) >= req.Limit {
						resp.Truncated = true
						return false
					}
					resp.Points = append(resp.Points, p.Summary(plan.names))
					return true
				})
				if err != nil {
					return err
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
				s.genericPoints.Add(uint64(n))
			}
			if plan.prunedSize > 0 {
				s.genericPruned.Add(plan.spaceSize - plan.prunedSize)
			}
			resp.Returned = len(resp.Points)
			// The cancellation-aware encoder: a deadline that expires while
			// a large body marshals aborts the encode, not just the walk.
			b, err := encodeGenericResponse(ctx, &resp)
			if err != nil {
				return err
			}
			out = b
			return nil
		})
		if berr != nil {
			return nil, berr
		}
		return out, nil
	})
	if stale {
		s.degraded.Inc()
		return v.([]byte), false, true, nil
	}
	if err != nil {
		return nil, false, false, err
	}
	return v.([]byte), cached, false, nil
}

func (s *Server) handleEnumerateGeneric(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[EnumerateGenericRequest](s, w, r)
	if !ok {
		return
	}
	norm, plan, err := s.normalizeEnumerateGeneric(req)
	if err != nil {
		replyError(w, r, err)
		return
	}
	if wantsStream(r) {
		if norm.Shards > 0 {
			s.streamFleetGeneric(w, r, norm, plan, stream.NDJSON)
			return
		}
		s.streamGeneric(w, r, norm, plan, stream.NDJSON)
		return
	}
	if norm.Delta {
		replyError(w, r, badRequestf(
			"delta requires a streamed response (Accept: application/x-ndjson or ?stream=1)"))
		return
	}
	if norm.Shards > 0 {
		s.handleFleetGeneric(w, r, norm, plan)
		return
	}
	body, cached, degraded, err := s.genericBytes(r, norm, plan)
	if err != nil {
		replyError(w, r, err)
		return
	}
	if degraded {
		w.Header().Set("X-Degraded", "true")
		s.writeBody(w, r, markDegraded(body), false)
		return
	}
	s.writeBody(w, r, body, cached)
}
