package server

// Fuzzes the streaming negotiation surface: Accept / Accept-Encoding
// headers, the SSE endpoint's query-parameter parser, and delta
// requests. The contract is the same 400-never-5xx rule as the body
// fuzz — a stream either starts with a 200 or the request fails with a
// clean 4xx, whatever the headers and query say; and once started, the
// body is well-framed NDJSON/SSE, never a half-written JSON envelope.
// Seed inputs are checked in under testdata/fuzz/FuzzStreamNegotiation.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzStreamNegotiation(f *testing.F) {
	type seed struct{ accept, encoding, query string }
	seeds := []seed{
		// Clean negotiations.
		{"application/x-ndjson", "gzip", "workload=ep&types=arm-cortex-a9:2:switch,amd-opteron-k10:2&frontier_only=1"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&frontier_only=true&delta=1"},
		{"application/json", "gzip;q=0", "workload=ep&types=arm-cortex-a9:2&limit=5"},
		{"text/event-stream", "*;q=0.5", "workload=ep&types=arm-cortex-a9:2&frontier_only=1&stream=1"},
		// Header junk: weights, casing, duplicates, whitespace, partial
		// matches of the NDJSON token.
		{"APPLICATION/X-NDJSON;q=0.9, */*", "GZIP , deflate;q=x", "workload=ep&types=arm-cortex-a9:2"},
		{"application/x-ndjso", "gzip;;;q=", "workload=ep&types=arm-cortex-a9:2"},
		{",,,", ";q=1", "workload=ep&types=arm-cortex-a9:2&frontier_only=1"},
		// Query rejection classes: bad types grammar, bad booleans, bad
		// numbers, delta misuse, shard misuse, unknown workload.
		{"application/x-ndjson", "", "workload=ep&types=bogus"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:two"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2:maybe"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&frontier_only=yes!"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&limit=1e9"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&shards=zebra"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&profile_version=-1"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&delta=1"},
		{"application/x-ndjson", "", "workload=ep&types=arm-cortex-a9:2&frontier_only=1&shard=0/2&delta=1"},
		{"application/x-ndjson", "", "workload=nope&types=arm-cortex-a9:2"},
		{"application/x-ndjson", "", "workload=ep"},
		{"application/x-ndjson", "", ""},
		{"application/x-ndjson", "", "types=arm-cortex-a9:2&shard=9/2&frontier_only=1"},
	}
	for _, s := range seeds {
		f.Add(s.accept, s.encoding, s.query)
	}
	f.Fuzz(func(t *testing.T, accept, encoding, query string) {
		s := fuzzServer(t)
		// The POST endpoint with negotiation headers: a small valid body,
		// so only the header/query surface is under mutation.
		body := `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":2}],"frontier_only":true}`
		target := "/v1/enumerate-generic"
		if query != "" {
			target += "?" + sanitizeQuery(query)
		}
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
		req.Header.Set("Accept", sanitizeHeaderValue(accept))
		req.Header.Set("Accept-Encoding", sanitizeHeaderValue(encoding))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code >= 500 {
			t.Fatalf("POST %s (Accept %q) answered %d: %s", target, accept, rr.Code, rr.Body)
		}

		// The SSE GET endpoint: the query string IS the request.
		sseTarget := "/v1/enumerate-generic/stream"
		if query != "" {
			sseTarget += "?" + sanitizeQuery(query)
		}
		sreq := httptest.NewRequest(http.MethodGet, sseTarget, nil)
		sreq.Header.Set("Accept-Encoding", sanitizeHeaderValue(encoding))
		srr := httptest.NewRecorder()
		s.Handler().ServeHTTP(srr, sreq)
		if srr.Code >= 500 {
			t.Fatalf("GET %s answered %d: %s", sseTarget, srr.Code, srr.Body)
		}
	})
}

// sanitizeQuery drops bytes that would make httptest.NewRequest panic
// on an unparseable URL — a real listener would have rejected the
// request line before the handler ever saw it.
func sanitizeQuery(q string) string {
	var b strings.Builder
	for i := 0; i < len(q); i++ {
		c := q[i]
		if c > 0x20 && c != 0x7f && c != '#' {
			b.WriteByte(c)
		}
	}
	return b.String()
}
