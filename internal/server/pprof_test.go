package server

// The pprof mount is opt-in: profiling endpoints expose internals, so
// they must be unreachable unless Options.EnablePprof (the daemon's
// -pprof flag) asked for them.

import (
	"net/http"
	"testing"
)

func TestPprofGatedByOption(t *testing.T) {
	off := newTestServer(t, Options{})
	if rr := get(t, off, "/debug/pprof/"); rr.Code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ answered %d, want 404", rr.Code)
	}

	on := newTestServer(t, Options{EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if rr := get(t, on, path); rr.Code != http.StatusOK {
			t.Errorf("pprof on: %s answered %d, want 200", path, rr.Code)
		}
	}
	// The index serves named profiles by path too.
	if rr := get(t, on, "/debug/pprof/goroutine"); rr.Code != http.StatusOK {
		t.Errorf("pprof on: goroutine profile answered %d, want 200", rr.Code)
	}
}
