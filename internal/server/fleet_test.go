package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"heteromix/internal/resilience"
	"heteromix/internal/shard"
)

// fleetTri extends the canonical tri-type request (triBody, shared with
// the generic-handler tests) to the frontier-only form fleet mode
// shards: all three node types, switch accounting on the ARM side, and
// domination pruning in play.
const fleetTri = triBody + `,"frontier_only":true`

func fleetShardedBody(shards int) string {
	return fmt.Sprintf(`%s,"shards":%d}`, fleetTri, shards)
}

// testFleet is the fleet-in-one harness: n replica Servers each behind
// a real HTTP listener and a switchable replica-level chaos valve, and
// a coordinator configured with their URLs — a whole fleet inside one
// test process. chaos[i].Kill()/Revive() kills and revives replica i
// mid-test without tearing down its listener.
type testFleet struct {
	coord    *Server
	replicas []*Server
	backends []*httptest.Server
	chaos    []*resilience.ReplicaChaos
	urls     []string
}

// newFleet builds the harness. coordOpts.Replicas is filled in; set any
// other knob before calling. Unless the test asks for its own probe
// cadence, background probing is effectively off (an hour-long
// interval) so transitions happen only through ProbeFleet — keeping
// health state machine steps deterministic under the race detector.
func newFleet(t testing.TB, n int, coordOpts, replicaOpts Options) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		rs := newTestServer(t, replicaOpts)
		rc := resilience.NewReplicaChaos()
		hs := httptest.NewServer(rc.Middleware(rs.Handler()))
		t.Cleanup(hs.Close)
		f.replicas = append(f.replicas, rs)
		f.backends = append(f.backends, hs)
		f.chaos = append(f.chaos, rc)
		f.urls = append(f.urls, hs.URL)
	}
	coordOpts.Replicas = f.urls
	if coordOpts.ProbeInterval == 0 {
		coordOpts.ProbeInterval = time.Hour
	}
	f.coord = newTestServer(t, coordOpts)
	return f
}

// primaryOf returns the replica index owning shard i's primary slot on
// the coordinator's ring — the one to kill when a test needs shard i's
// first attempt to fail deterministically.
func (f *testFleet) primaryOf(t testing.TB, i int) int {
	t.Helper()
	owner := shard.NewRing(f.urls, 0).Lookup("shard:" + strconv.Itoa(i))
	for j, u := range f.urls {
		if u == owner {
			return j
		}
	}
	t.Fatalf("no replica owns shard %d", i)
	return -1
}

// fleetWorkBody renders the tri-type sharded request with an explicit
// work size — distinct sizes take distinct cache keys, so every round
// of a soak recomputes instead of hitting the previous round's merge.
func fleetWorkBody(shards int, work float64) string {
	return fmt.Sprintf(`%s,"work":%g,"shards":%d}`, fleetTri, work, shards)
}

// unshardedWorkBody is the same request a plain server answers — the
// bit-identical ground truth for fleetWorkBody merges.
func unshardedWorkBody(work float64) string {
	return fmt.Sprintf(`%s,"work":%g}`, fleetTri, work)
}

// TestFleetMergedBitIdenticalToUnsharded is the tentpole's serving-layer
// acceptance: the coordinator's 4-shard scatter-gather answers the very
// bytes a single unsharded server computes for the same space.
func TestFleetMergedBitIdenticalToUnsharded(t *testing.T) {
	plain := newTestServer(t, Options{})
	want := post(t, plain, "/v1/enumerate-generic", fleetTri+"}")
	if want.Code != http.StatusOK {
		t.Fatalf("unsharded: %d %s", want.Code, want.Body)
	}

	f := newFleet(t, 4, Options{}, Options{})
	got := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(4))
	if got.Code != http.StatusOK {
		t.Fatalf("fleet: %d %s", got.Code, got.Body)
	}
	if got.Header().Get("X-Fleet-Shards") != "4" {
		t.Errorf("X-Fleet-Shards = %q, want 4", got.Header().Get("X-Fleet-Shards"))
	}
	if got.Body.String() != want.Body.String() {
		t.Fatalf("fleet merge is not byte-identical to the unsharded response\n fleet: %s\nsingle: %s",
			got.Body, want.Body)
	}
	// 7 shards over 4 replicas: uneven assignment must merge identically
	// too.
	got7 := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(7))
	if got7.Code != http.StatusOK || got7.Body.String() != want.Body.String() {
		t.Fatalf("7-shard merge differs: %d %s", got7.Code, got7.Body)
	}
}

// TestFleetSharesCacheWithUnsharded: a successful fleet merge lands
// under the unsharded request's cache key, so fleet and single-process
// traffic serve each other's entries.
func TestFleetSharesCacheWithUnsharded(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	first := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("fleet miss: %d cache=%q", first.Code, first.Header().Get("X-Cache"))
	}
	// The unsharded spelling of the same request hits the merged entry.
	unsharded := post(t, f.coord, "/v1/enumerate-generic", fleetTri+"}")
	if unsharded.Code != http.StatusOK || unsharded.Header().Get("X-Cache") != "hit" {
		t.Fatalf("unsharded after fleet: %d cache=%q", unsharded.Code, unsharded.Header().Get("X-Cache"))
	}
	if unsharded.Body.String() != first.Body.String() {
		t.Fatal("cached unsharded body differs from the fleet merge")
	}
	// And the reverse: a fleet request hits an entry the local path wrote.
	again := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if again.Code != http.StatusOK || again.Header().Get("X-Cache") != "hit" {
		t.Fatalf("fleet after cache: %d cache=%q", again.Code, again.Header().Get("X-Cache"))
	}
}

// TestFleetShardFailoverServesFull: with one replica dead but not yet
// probed dead, the shards it owns fail over to the next ring member and
// the coordinator keeps serving full, non-degraded merges bit-identical
// to an unsharded server — the old "one dead replica degrades every
// fan-out" behaviour is gone. Repeated fan-outs trip the dead replica's
// breaker. Hedging is off so each failed first attempt is observed
// synchronously (a cancelled hedge loser would be breaker-neutral).
func TestFleetShardFailoverServesFull(t *testing.T) {
	f := newFleet(t, 4, Options{
		BreakerThreshold: 2, BreakerCooldown: time.Minute, DisableHedge: true,
	}, Options{})
	plain := newTestServer(t, Options{})
	victim := f.primaryOf(t, 0) // shard 0's first attempt now lands on a dead URL
	f.backends[victim].Close()

	for round := 0; round < 3; round++ {
		work := 5e7 + float64(round) // fresh cache key every round
		want := post(t, plain, "/v1/enumerate-generic", unshardedWorkBody(work))
		if want.Code != http.StatusOK {
			t.Fatalf("round %d unsharded: %d %s", round, want.Code, want.Body)
		}
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetWorkBody(4, work))
		if rr.Code != http.StatusOK {
			t.Fatalf("round %d: %d %s", round, rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Degraded") == "true" {
			t.Fatalf("round %d: failover round marked degraded: %s", round, rr.Body)
		}
		if rr.Body.String() != want.Body.String() {
			t.Fatalf("round %d: failover merge not bit-identical to unsharded\n fleet: %s\nsingle: %s",
				round, rr.Body, want.Body)
		}
	}
	snap := f.coord.reg.Snapshot()
	if snap["heteromixd_fleet_failovers_total"] < 3 {
		t.Errorf("fleet_failovers_total = %v, want >= 3 (one per round)",
			snap["heteromixd_fleet_failovers_total"])
	}
	if snap["heteromixd_fleet_breaker_opens_total"] < 1 {
		t.Errorf("fleet_breaker_opens_total = %v, want >= 1 (threshold 2, 3 failed rounds)",
			snap["heteromixd_fleet_breaker_opens_total"])
	}
	if snap["heteromixd_fleet_shard_errors_total"] != 0 {
		t.Errorf("fleet_shard_errors_total = %v, want 0 (every shard was rescued)",
			snap["heteromixd_fleet_shard_errors_total"])
	}
}

// partialKillPlan picks the single replica to keep alive so that at
// least one shard's top-2 ring candidates are both dead (ring order
// depends on the ephemeral listener ports, so the choice is computed,
// not hard-coded), and returns the shard indices expected to fail.
// alive is -1 when no such choice exists.
func partialKillPlan(f *testFleet, shards int) (alive int, expectFailed []int) {
	ring := shard.NewRing(f.urls, 0)
	for cand := range f.urls {
		var fails []int
		for i := 0; i < shards; i++ {
			walk := ring.Successors("shard:" + strconv.Itoa(i))[:2]
			if walk[0] != f.urls[cand] && walk[1] != f.urls[cand] {
				fails = append(fails, i)
			}
		}
		if len(fails) > 0 {
			return cand, fails
		}
	}
	return -1, nil
}

// TestFleetPartialWhenFailoverExhausted: a shard degrades only when its
// whole candidate walk is down. The test computes, from the same ring
// the coordinator uses, which shards have both top-2 candidates among
// the killed replicas, and expects exactly those listed in
// failed_shards — and the partial is never cached.
func TestFleetPartialWhenFailoverExhausted(t *testing.T) {
	const shards = 8
	f := newFleet(t, 4, Options{DisableHedge: true}, Options{})

	alive, expectFailed := partialKillPlan(f, shards)
	if alive < 0 {
		t.Skip("every shard's top-2 walk contains every replica (astronomically unlikely)")
	}
	for i := range f.chaos {
		if i != alive {
			f.chaos[i].Kill()
		}
	}

	rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(shards))
	if rr.Code != http.StatusOK {
		t.Fatalf("partial fan-out: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Degraded") != "true" {
		t.Fatalf("exhausted failover not marked degraded: %s", rr.Body)
	}
	wantList, _ := json.Marshal(expectFailed)
	if !strings.Contains(rr.Body.String(), fmt.Sprintf(`"failed_shards":%s`, wantList)) {
		t.Fatalf("failed_shards != %s in: %s", wantList, rr.Body)
	}
	// Degraded partials ride the error path: nothing was cached.
	again := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(shards))
	if again.Header().Get("X-Cache") == "hit" {
		t.Fatal("degraded partial was served from cache")
	}
	if snap := f.coord.reg.Snapshot(); snap["heteromixd_fleet_shard_errors_total"] < float64(len(expectFailed)) {
		t.Errorf("fleet_shard_errors_total = %v, want >= %d",
			snap["heteromixd_fleet_shard_errors_total"], len(expectFailed))
	}
}

// TestFleetAllShardsDownAnswers503: total fan-out failure is an
// availability condition, not a server bug.
func TestFleetAllShardsDownAnswers503(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	f.backends[0].Close()
	f.backends[1].Close()
	rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down fleet: %d %s, want 503", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestFleetValidation pins the 400 surface of the new request fields on
// a fleet-enabled coordinator and a plain server.
func TestFleetValidation(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	plain := newTestServer(t, Options{})
	cases := []struct {
		name string
		s    *Server
		body string
	}{
		{"shard without frontier_only", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"shard":"0/2"}`},
		{"malformed shard", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true,"shard":"x/y"}`},
		{"shard index past count", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true,"shard":"3/2"}`},
		{"shard and shards together", f.coord, fmt.Sprintf(`%s,"shard":"0/2","shards":2}`, fleetTri)},
		{"negative shards", f.coord, fmt.Sprintf(`%s,"shards":-1}`, triBody)},
		{"shards past the cap", f.coord, fmt.Sprintf(`%s,"shards":%d}`, triBody, maxFleetShards+1)},
		{"shards without frontier_only", f.coord, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"shards":2}`},
		{"replicas without shards", f.coord, fmt.Sprintf(`%s,"replicas":["http://127.0.0.1:1"]}`, triBody)},
		{"bad replica URL", f.coord, fmt.Sprintf(`%s,"shards":2,"replicas":["ftp://x"]}`, triBody)},
		{"fleet on a non-fleet server", plain, fmt.Sprintf(`%s,"shards":2}`, triBody)},
		{"request replicas on a non-fleet server", plain, fmt.Sprintf(`%s,"shards":2,"replicas":["http://127.0.0.1:1"]}`, triBody)},
	}
	for _, tc := range cases {
		rr := post(t, tc.s, "/v1/enumerate-generic", tc.body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", tc.name, rr.Code, rr.Body)
		}
	}
}

// TestShardedReplicaServesSlice: a replica answering shard requests
// reports its slice and indices, and distinct slices cache separately.
func TestShardedReplicaServesSlice(t *testing.T) {
	s := newTestServer(t, Options{})
	a := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"0/2"}`, fleetTri))
	b := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"1/2"}`, fleetTri))
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("shard requests: %d / %d", a.Code, b.Code)
	}
	ra := decodeBody[EnumerateGenericResponse](t, a)
	rb := decodeBody[EnumerateGenericResponse](t, b)
	if ra.Shard != "0/2" || rb.Shard != "1/2" {
		t.Fatalf("echoed shards %q, %q", ra.Shard, rb.Shard)
	}
	if len(ra.Indices) != len(ra.Points) || len(rb.Indices) != len(rb.Points) {
		t.Fatal("indices not parallel to points")
	}
	if b.Header().Get("X-Cache") != "miss" {
		t.Error("distinct slices shared a cache entry")
	}
	// Same slice again: cached.
	a2 := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"0/2"}`, fleetTri))
	if a2.Header().Get("X-Cache") != "hit" {
		t.Error("identical slice request missed the cache")
	}
}

// TestRoutePredictForwards: with a route key configured, predict lands
// on its workload's consistent-hash owner exactly once (the routed
// marker stops a second hop), and batch requests route as a unit only
// when all items share a workload.
func TestRoutePredictForwards(t *testing.T) {
	f := newFleet(t, 2, Options{RouteKey: "workload"}, Options{})
	body := `{"workload":"ep","arm":{"nodes":2}}`
	rr := post(t, f.coord, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("routed predict: %d %s", rr.Code, rr.Body)
	}
	target := rr.Header().Get("X-Routed-To")
	if target != f.urls[0] && target != f.urls[1] {
		t.Fatalf("X-Routed-To = %q, want one of %v", target, f.urls)
	}
	// The replica's own answer for the canonicalized request, for
	// comparison: forwarding must not change the body.
	direct := post(t, newTestServer(t, Options{}), "/v1/predict", body)
	if rr.Body.String() != direct.Body.String() {
		t.Fatalf("routed body differs from direct compute:\n%s\n%s", rr.Body, direct.Body)
	}

	// A request already carrying the routed marker is served locally.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set(routedHeader, "1")
	loop := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(loop, req)
	if loop.Code != http.StatusOK || loop.Header().Get("X-Routed-To") != "" {
		t.Fatalf("marked request was forwarded again: %d %q", loop.Code, loop.Header().Get("X-Routed-To"))
	}

	// Single-workload batches route as a unit; mixed ones stay local.
	batch := `{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},` +
		`{"kind":"predict","request":{"workload":"ep","amd":{"nodes":1}}}]}`
	rb := post(t, f.coord, "/v1/batch", batch)
	if rb.Code != http.StatusOK || rb.Header().Get("X-Routed-To") == "" {
		t.Fatalf("single-workload batch not routed: %d %q", rb.Code, rb.Header().Get("X-Routed-To"))
	}
	mixed := `{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},` +
		`{"kind":"queueing","request":{"arrival_rate":1,"service_time_seconds":0.1}}]}`
	rm := post(t, f.coord, "/v1/batch", mixed)
	if rm.Code != http.StatusOK || rm.Header().Get("X-Routed-To") != "" {
		t.Fatalf("mixed batch was routed: %d %q", rm.Code, rm.Header().Get("X-Routed-To"))
	}

	snap := f.coord.reg.Snapshot()
	if snap["heteromixd_routed_requests_total"] < 2 {
		t.Errorf("routed_requests_total = %v, want >= 2", snap["heteromixd_routed_requests_total"])
	}
}

// TestRouteFallsBackWhenOwnerDead: a failed forward computes locally —
// routing is an optimization, never an availability dependency.
func TestRouteFallsBackWhenOwnerDead(t *testing.T) {
	f := newFleet(t, 2, Options{RouteKey: "workload"}, Options{})
	f.backends[0].Close()
	f.backends[1].Close()
	rr := post(t, f.coord, "/v1/predict", `{"workload":"ep","arm":{"nodes":2}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("fallback predict: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Routed-To") != "" {
		t.Error("dead-owner request claims to have been routed")
	}
	if snap := f.coord.reg.Snapshot(); snap["heteromixd_route_fallbacks_total"] < 1 {
		t.Errorf("route_fallbacks_total = %v, want >= 1", snap["heteromixd_route_fallbacks_total"])
	}
}

// TestFleetChaosSoak extends the chaos soak to the fan-out path:
// replicas inject errors and panics under the coordinator while it
// scatter-gathers, and the fleet keeps answering only 200/503/504 with
// degraded partials where slices failed. Failover means a shard only
// degrades when BOTH its candidates fail in the same round, so the
// injection probabilities sit well above the single-replica soak's.
func TestFleetChaosSoak(t *testing.T) {
	replicaOpts := Options{
		Chaos: resilience.ChaosOptions{
			ErrorProb: 0.5,
			PanicProb: 0.2,
			Seed:      11,
		},
		BreakerThreshold: 100, // keep replica-side breakers out of the way
	}
	f := newFleet(t, 3, Options{BreakerThreshold: 200, CacheTTL: time.Millisecond}, replicaOpts)
	sawOK, sawDegraded := false, false
	for round := 0; round < 30; round++ {
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(3))
		switch rr.Code {
		case http.StatusOK:
			sawOK = true
			if rr.Header().Get("X-Degraded") == "true" {
				sawDegraded = true
				if !strings.Contains(rr.Body.String(), `"degraded":true`) {
					t.Fatalf("round %d: degraded header without degraded body", round)
				}
			}
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// All shards down this round (or breakers open): acceptable.
		default:
			t.Fatalf("round %d: status %d: %s", round, rr.Code, rr.Body)
		}
		time.Sleep(2 * time.Millisecond) // let the TTL lapse so rounds recompute
	}
	if !sawOK {
		t.Error("no fan-out round succeeded under chaos")
	}
	if !sawDegraded {
		t.Error("no round served a degraded partial under 70% per-request faults")
	}
	if hz := get(t, f.coord, "/healthz"); hz.Code != http.StatusOK {
		t.Fatalf("coordinator unhealthy after soak: %d", hz.Code)
	}
}
