package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heteromix/internal/resilience"
)

// fleetTri extends the canonical tri-type request (triBody, shared with
// the generic-handler tests) to the frontier-only form fleet mode
// shards: all three node types, switch accounting on the ARM side, and
// domination pruning in play.
const fleetTri = triBody + `,"frontier_only":true`

func fleetShardedBody(shards int) string {
	return fmt.Sprintf(`%s,"shards":%d}`, fleetTri, shards)
}

// testFleet is the fleet-in-one harness: n replica Servers each behind
// a real HTTP listener, and a coordinator configured with their URLs —
// a whole fleet inside one test process.
type testFleet struct {
	coord    *Server
	replicas []*Server
	backends []*httptest.Server
	urls     []string
}

// newFleet builds the harness. coordOpts.Replicas is filled in; set any
// other knob before calling.
func newFleet(t testing.TB, n int, coordOpts, replicaOpts Options) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		rs := newTestServer(t, replicaOpts)
		hs := httptest.NewServer(rs.Handler())
		t.Cleanup(hs.Close)
		f.replicas = append(f.replicas, rs)
		f.backends = append(f.backends, hs)
		f.urls = append(f.urls, hs.URL)
	}
	coordOpts.Replicas = f.urls
	f.coord = newTestServer(t, coordOpts)
	return f
}

// TestFleetMergedBitIdenticalToUnsharded is the tentpole's serving-layer
// acceptance: the coordinator's 4-shard scatter-gather answers the very
// bytes a single unsharded server computes for the same space.
func TestFleetMergedBitIdenticalToUnsharded(t *testing.T) {
	plain := newTestServer(t, Options{})
	want := post(t, plain, "/v1/enumerate-generic", fleetTri+"}")
	if want.Code != http.StatusOK {
		t.Fatalf("unsharded: %d %s", want.Code, want.Body)
	}

	f := newFleet(t, 4, Options{}, Options{})
	got := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(4))
	if got.Code != http.StatusOK {
		t.Fatalf("fleet: %d %s", got.Code, got.Body)
	}
	if got.Header().Get("X-Fleet-Shards") != "4" {
		t.Errorf("X-Fleet-Shards = %q, want 4", got.Header().Get("X-Fleet-Shards"))
	}
	if got.Body.String() != want.Body.String() {
		t.Fatalf("fleet merge is not byte-identical to the unsharded response\n fleet: %s\nsingle: %s",
			got.Body, want.Body)
	}
	// 7 shards over 4 replicas: uneven assignment must merge identically
	// too.
	got7 := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(7))
	if got7.Code != http.StatusOK || got7.Body.String() != want.Body.String() {
		t.Fatalf("7-shard merge differs: %d %s", got7.Code, got7.Body)
	}
}

// TestFleetSharesCacheWithUnsharded: a successful fleet merge lands
// under the unsharded request's cache key, so fleet and single-process
// traffic serve each other's entries.
func TestFleetSharesCacheWithUnsharded(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	first := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("fleet miss: %d cache=%q", first.Code, first.Header().Get("X-Cache"))
	}
	// The unsharded spelling of the same request hits the merged entry.
	unsharded := post(t, f.coord, "/v1/enumerate-generic", fleetTri+"}")
	if unsharded.Code != http.StatusOK || unsharded.Header().Get("X-Cache") != "hit" {
		t.Fatalf("unsharded after fleet: %d cache=%q", unsharded.Code, unsharded.Header().Get("X-Cache"))
	}
	if unsharded.Body.String() != first.Body.String() {
		t.Fatal("cached unsharded body differs from the fleet merge")
	}
	// And the reverse: a fleet request hits an entry the local path wrote.
	again := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if again.Code != http.StatusOK || again.Header().Get("X-Cache") != "hit" {
		t.Fatalf("fleet after cache: %d cache=%q", again.Code, again.Header().Get("X-Cache"))
	}
}

// TestFleetShardDownDegrades is the chaos-path satellite: with one
// replica dead, the coordinator serves the surviving slices marked
// degraded with the failed shard listed, never caches the partial, and
// trips the dead replica's breaker after repeated fan-outs.
func TestFleetShardDownDegrades(t *testing.T) {
	f := newFleet(t, 4, Options{BreakerThreshold: 2, BreakerCooldown: time.Minute}, Options{})
	f.backends[2].Close() // shard 2 of 4 now lands on a dead URL

	for round := 0; round < 3; round++ {
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(4))
		if rr.Code != http.StatusOK {
			t.Fatalf("round %d: %d %s", round, rr.Code, rr.Body)
		}
		if rr.Header().Get("X-Degraded") != "true" {
			t.Fatalf("round %d: partial merge not marked degraded", round)
		}
		if rr.Header().Get("X-Cache") == "hit" {
			t.Fatalf("round %d: degraded partial was served from cache", round)
		}
		body := rr.Body.String()
		if !strings.Contains(body, `"degraded":true`) || !strings.Contains(body, `"failed_shards":[2]`) {
			t.Fatalf("round %d: body lacks degraded/failed_shards markers: %s", round, body)
		}
	}
	snap := f.coord.reg.Snapshot()
	if snap["heteromixd_fleet_shard_errors_total"] < 3 {
		t.Errorf("fleet_shard_errors_total = %v, want >= 3", snap["heteromixd_fleet_shard_errors_total"])
	}
	if snap["heteromixd_fleet_breaker_opens_total"] < 1 {
		t.Errorf("fleet_breaker_opens_total = %v, want >= 1 (threshold 2, 3 failed fan-outs)",
			snap["heteromixd_fleet_breaker_opens_total"])
	}
	if snap["heteromixd_degraded_responses_total"] < 3 {
		t.Errorf("degraded_responses_total = %v, want >= 3", snap["heteromixd_degraded_responses_total"])
	}
}

// TestFleetAllShardsDownAnswers503: total fan-out failure is an
// availability condition, not a server bug.
func TestFleetAllShardsDownAnswers503(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	f.backends[0].Close()
	f.backends[1].Close()
	rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(2))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down fleet: %d %s, want 503", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestFleetValidation pins the 400 surface of the new request fields on
// a fleet-enabled coordinator and a plain server.
func TestFleetValidation(t *testing.T) {
	f := newFleet(t, 2, Options{}, Options{})
	plain := newTestServer(t, Options{})
	cases := []struct {
		name string
		s    *Server
		body string
	}{
		{"shard without frontier_only", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"shard":"0/2"}`},
		{"malformed shard", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true,"shard":"x/y"}`},
		{"shard index past count", plain, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"frontier_only":true,"shard":"3/2"}`},
		{"shard and shards together", f.coord, fmt.Sprintf(`%s,"shard":"0/2","shards":2}`, fleetTri)},
		{"negative shards", f.coord, fmt.Sprintf(`%s,"shards":-1}`, triBody)},
		{"shards past the cap", f.coord, fmt.Sprintf(`%s,"shards":%d}`, triBody, maxFleetShards+1)},
		{"shards without frontier_only", f.coord, `{"workload":"ep","types":[{"node":"arm-cortex-a9","max_nodes":1}],"shards":2}`},
		{"replicas without shards", f.coord, fmt.Sprintf(`%s,"replicas":["http://127.0.0.1:1"]}`, triBody)},
		{"bad replica URL", f.coord, fmt.Sprintf(`%s,"shards":2,"replicas":["ftp://x"]}`, triBody)},
		{"fleet on a non-fleet server", plain, fmt.Sprintf(`%s,"shards":2}`, triBody)},
		{"request replicas on a non-fleet server", plain, fmt.Sprintf(`%s,"shards":2,"replicas":["http://127.0.0.1:1"]}`, triBody)},
	}
	for _, tc := range cases {
		rr := post(t, tc.s, "/v1/enumerate-generic", tc.body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", tc.name, rr.Code, rr.Body)
		}
	}
}

// TestShardedReplicaServesSlice: a replica answering shard requests
// reports its slice and indices, and distinct slices cache separately.
func TestShardedReplicaServesSlice(t *testing.T) {
	s := newTestServer(t, Options{})
	a := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"0/2"}`, fleetTri))
	b := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"1/2"}`, fleetTri))
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("shard requests: %d / %d", a.Code, b.Code)
	}
	ra := decodeBody[EnumerateGenericResponse](t, a)
	rb := decodeBody[EnumerateGenericResponse](t, b)
	if ra.Shard != "0/2" || rb.Shard != "1/2" {
		t.Fatalf("echoed shards %q, %q", ra.Shard, rb.Shard)
	}
	if len(ra.Indices) != len(ra.Points) || len(rb.Indices) != len(rb.Points) {
		t.Fatal("indices not parallel to points")
	}
	if b.Header().Get("X-Cache") != "miss" {
		t.Error("distinct slices shared a cache entry")
	}
	// Same slice again: cached.
	a2 := post(t, s, "/v1/enumerate-generic", fmt.Sprintf(`%s,"shard":"0/2"}`, fleetTri))
	if a2.Header().Get("X-Cache") != "hit" {
		t.Error("identical slice request missed the cache")
	}
}

// TestRoutePredictForwards: with a route key configured, predict lands
// on its workload's consistent-hash owner exactly once (the routed
// marker stops a second hop), and batch requests route as a unit only
// when all items share a workload.
func TestRoutePredictForwards(t *testing.T) {
	f := newFleet(t, 2, Options{RouteKey: "workload"}, Options{})
	body := `{"workload":"ep","arm":{"nodes":2}}`
	rr := post(t, f.coord, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("routed predict: %d %s", rr.Code, rr.Body)
	}
	target := rr.Header().Get("X-Routed-To")
	if target != f.urls[0] && target != f.urls[1] {
		t.Fatalf("X-Routed-To = %q, want one of %v", target, f.urls)
	}
	// The replica's own answer for the canonicalized request, for
	// comparison: forwarding must not change the body.
	direct := post(t, newTestServer(t, Options{}), "/v1/predict", body)
	if rr.Body.String() != direct.Body.String() {
		t.Fatalf("routed body differs from direct compute:\n%s\n%s", rr.Body, direct.Body)
	}

	// A request already carrying the routed marker is served locally.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set(routedHeader, "1")
	loop := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(loop, req)
	if loop.Code != http.StatusOK || loop.Header().Get("X-Routed-To") != "" {
		t.Fatalf("marked request was forwarded again: %d %q", loop.Code, loop.Header().Get("X-Routed-To"))
	}

	// Single-workload batches route as a unit; mixed ones stay local.
	batch := `{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},` +
		`{"kind":"predict","request":{"workload":"ep","amd":{"nodes":1}}}]}`
	rb := post(t, f.coord, "/v1/batch", batch)
	if rb.Code != http.StatusOK || rb.Header().Get("X-Routed-To") == "" {
		t.Fatalf("single-workload batch not routed: %d %q", rb.Code, rb.Header().Get("X-Routed-To"))
	}
	mixed := `{"items":[{"kind":"predict","request":{"workload":"ep","arm":{"nodes":1}}},` +
		`{"kind":"queueing","request":{"arrival_rate":1,"service_time_seconds":0.1}}]}`
	rm := post(t, f.coord, "/v1/batch", mixed)
	if rm.Code != http.StatusOK || rm.Header().Get("X-Routed-To") != "" {
		t.Fatalf("mixed batch was routed: %d %q", rm.Code, rm.Header().Get("X-Routed-To"))
	}

	snap := f.coord.reg.Snapshot()
	if snap["heteromixd_routed_requests_total"] < 2 {
		t.Errorf("routed_requests_total = %v, want >= 2", snap["heteromixd_routed_requests_total"])
	}
}

// TestRouteFallsBackWhenOwnerDead: a failed forward computes locally —
// routing is an optimization, never an availability dependency.
func TestRouteFallsBackWhenOwnerDead(t *testing.T) {
	f := newFleet(t, 2, Options{RouteKey: "workload"}, Options{})
	f.backends[0].Close()
	f.backends[1].Close()
	rr := post(t, f.coord, "/v1/predict", `{"workload":"ep","arm":{"nodes":2}}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("fallback predict: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Routed-To") != "" {
		t.Error("dead-owner request claims to have been routed")
	}
	if snap := f.coord.reg.Snapshot(); snap["heteromixd_route_fallbacks_total"] < 1 {
		t.Errorf("route_fallbacks_total = %v, want >= 1", snap["heteromixd_route_fallbacks_total"])
	}
}

// TestFleetChaosSoak extends the chaos soak to the fan-out path:
// replicas inject errors and panics under the coordinator while it
// scatter-gathers, and the fleet keeps answering only 200/503/504 with
// degraded partials where slices failed.
func TestFleetChaosSoak(t *testing.T) {
	replicaOpts := Options{
		Chaos: resilience.ChaosOptions{
			ErrorProb: 0.3,
			PanicProb: 0.1,
			Seed:      11,
		},
		BreakerThreshold: 100, // keep replica-side breakers out of the way
	}
	f := newFleet(t, 3, Options{BreakerThreshold: 50, CacheTTL: time.Millisecond}, replicaOpts)
	sawOK, sawDegraded := false, false
	for round := 0; round < 25; round++ {
		rr := post(t, f.coord, "/v1/enumerate-generic", fleetShardedBody(3))
		switch rr.Code {
		case http.StatusOK:
			sawOK = true
			if rr.Header().Get("X-Degraded") == "true" {
				sawDegraded = true
				if !strings.Contains(rr.Body.String(), `"degraded":true`) {
					t.Fatalf("round %d: degraded header without degraded body", round)
				}
			}
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// All shards down this round (or breakers open): acceptable.
		default:
			t.Fatalf("round %d: status %d: %s", round, rr.Code, rr.Body)
		}
		time.Sleep(2 * time.Millisecond) // let the TTL lapse so rounds recompute
	}
	if !sawOK {
		t.Error("no fan-out round succeeded under chaos")
	}
	if !sawDegraded {
		t.Error("no round served a degraded partial under 30% shard errors")
	}
	if hz := get(t, f.coord, "/healthz"); hz.Code != http.StatusOK {
		t.Fatalf("coordinator unhealthy after soak: %d", hz.Code)
	}
}
