package server

// Benchmarks and CI gates for the streaming wire layer, run by
// `make bench-stream`:
//
//   - TestStreamAllocGate pins the tentpole's memory claim: a streamed
//     enumeration allocates O(frontier) — the walk plus one chunk
//     buffer — not O(space) like the buffered path, which materializes
//     every summary and the whole marshaled body.
//   - TestStreamTTFPGate pins the latency claim: over real TCP, the
//     first streamed point arrives ≥5x sooner than the buffered
//     response's first byte on the same walk (the buffered path cannot
//     write until the walk and the encode both finish).
//   - The benchmarks record the row-throughput and gzip pooling numbers
//     tracked in BENCH_serving.json.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// streamBenchBody is the unsharded spelling of the 384,344-point
// tri-cluster space the fleet benchmarks walk.
const streamBenchBody = `{"workload":"ep","types":[` +
	`{"node":"arm-cortex-a9","max_nodes":4,"needs_switch":true},` +
	`{"node":"arm-cortex-a15","max_nodes":4,"needs_switch":true},` +
	`{"node":"amd-opteron-k10","max_nodes":4}]`

// walk20kBody caps the same space to a 20,000-row materializing walk —
// the shape where buffered O(space) memory actually bites.
const walk20kBody = streamBenchBody + `,"limit":20000}`

// fullWalkBody materializes every one of the 384,344 rows — the shape
// where the buffered path must hold the whole space before its first
// byte can leave.
const fullWalkBody = streamBenchBody + `,"limit":400000}`

// streamBenchOpts admits the full 384k walk and its row count.
func streamBenchOpts() Options {
	return Options{MaxGenericSpace: 5_000_000, MaxPoints: 400_000}
}

// discardFlusher is a ResponseWriter that throws the body away but
// supports flushing, so the streamed path runs its full chunk protocol
// without measuring recorder buffer growth.
type discardFlusher struct{ h http.Header }

func (d *discardFlusher) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardFlusher) WriteHeader(int)             {}
func (d *discardFlusher) Flush()                      {}

// allocBytes runs fn once and returns the heap bytes it allocated.
func allocBytes(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func discardRequest(tb testing.TB, s *Server, body string, stream bool) {
	tb.Helper()
	path := "/v1/enumerate-generic"
	if stream {
		path += "?stream=1"
	}
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	s.Handler().ServeHTTP(&discardFlusher{}, req)
}

// TestStreamAllocGate is the bench-stream memory gate. Only runs under
// `make bench-stream` (HETEROMIX_STREAM_GATE=1) so plain `go test
// ./...` stays fast.
func TestStreamAllocGate(t *testing.T) {
	if os.Getenv("HETEROMIX_STREAM_GATE") != "1" {
		t.Skip("set HETEROMIX_STREAM_GATE=1 (make bench-stream) to run the allocation gate")
	}
	s := newTestServer(t, streamBenchOpts())
	frontierBody := streamBenchBody + `,"frontier_only":true}`
	// Warm-up compiles the kernel tables and grows every pool — both
	// paths, so the comparison below is steady state, not cold buffers.
	discardRequest(t, s, frontierBody, true)
	discardRequest(t, s, walk20kBody, true)
	s.cache.Reset()
	discardRequest(t, s, walk20kBody, false)
	s.cache.Reset()

	// Claim 1: the streamed frontier walk of the 384k space allocates
	// O(frontier). The absolute bound is generous against the ~100 MB a
	// naive materialization of 384k summaries costs, but tight enough
	// that any per-point allocation on the walk would blow through it.
	streamedFrontier := allocBytes(func() { discardRequest(t, s, frontierBody, true) })
	t.Logf("streamed 384k-point frontier walk: %.2f MB allocated", float64(streamedFrontier)/1e6)
	if streamedFrontier > 8<<20 {
		t.Errorf("streamed frontier walk allocated %d bytes, gate 8 MB: the walk is allocating per point, not per frontier entry",
			streamedFrontier)
	}

	// Claim 2: on a materializing walk, the streamed path allocates a
	// fraction of the buffered one. Per-row summary construction is
	// common to both; the buffered path additionally holds every summary
	// and the whole marshaled body (~2x at 20k rows, growing with the
	// row count), the streamed path only one recycled chunk buffer.
	s.cache.Reset()
	streamed20k := allocBytes(func() { discardRequest(t, s, walk20kBody, true) })
	s.cache.Reset()
	buffered20k := allocBytes(func() { discardRequest(t, s, walk20kBody, false) })
	t.Logf("20k-row walk: streamed %.2f MB, buffered %.2f MB (%.1fx)",
		float64(streamed20k)/1e6, float64(buffered20k)/1e6, float64(buffered20k)/float64(streamed20k))
	if float64(streamed20k)*1.5 > float64(buffered20k) {
		t.Errorf("streamed 20k walk allocated %d bytes vs buffered %d: want ≤ 1/1.5",
			streamed20k, buffered20k)
	}
}

// ttfp opens one request against a live listener and returns how long
// the payload took to start arriving: for a stream, the n-th
// newline-terminated line (line 2 is the first point); for a buffered
// response (lines == 0), the first body byte.
func ttfp(tb testing.TB, url, body string, stream bool, lines int) time.Duration {
	tb.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	if stream {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var elapsed time.Duration
	if lines == 0 {
		if _, err := br.ReadByte(); err != nil {
			tb.Fatalf("reading first body byte: %v", err)
		}
		elapsed = time.Since(start)
	}
	for i := 0; i < lines; i++ {
		if _, err := br.ReadBytes('\n'); err != nil {
			tb.Fatalf("reading line %d: %v", i, err)
		}
		elapsed = time.Since(start)
	}
	// The deferred Close hangs up; a streamed trial sheds the rest of
	// its walk server-side, which is exactly the disconnect contract.
	return elapsed
}

// TestStreamTTFPGate: time-to-first-point of the streamed 384k-row
// walk must be ≥5x lower than the buffered response's
// time-to-first-byte — the buffered path walks, materializes and
// encodes all 384,344 rows before it can write anything.
func TestStreamTTFPGate(t *testing.T) {
	if os.Getenv("HETEROMIX_STREAM_GATE") != "1" {
		t.Skip("set HETEROMIX_STREAM_GATE=1 (make bench-stream) to run the TTFP gate")
	}
	s := newTestServer(t, streamBenchOpts())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	url := hs.URL + "/v1/enumerate-generic"
	body := fullWalkBody

	// Warm-up: compile tables, then evict results so every trial walks.
	ttfp(t, url, body, false, 0)

	best := func(stream bool, lines int) time.Duration {
		min := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			s.cache.Reset()
			if d := ttfp(t, url, body, stream, lines); d < min {
				min = d
			}
		}
		return min
	}
	// Line 2 of the stream is the first point (line 1 is the head).
	streamed := best(true, 2)
	buffered := best(false, 0)
	ratio := float64(buffered) / float64(streamed)
	t.Logf("time to first point: streamed %v, buffered %v (%.1fx)", streamed, buffered, ratio)
	if ratio < 5 {
		t.Errorf("streamed TTFP %v only %.1fx better than buffered %v, gate 5x", streamed, ratio, buffered)
	}
}

func benchGenericWalk(b *testing.B, body string, stream bool) {
	s := newTestServer(b, streamBenchOpts())
	discardRequest(b, s, body, stream) // warm the kernel tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.cache.Reset()
		b.StartTimer()
		discardRequest(b, s, body, stream)
	}
}

func BenchmarkStreamGenericFrontier(b *testing.B) {
	benchGenericWalk(b, streamBenchBody+`,"frontier_only":true}`, true)
}

func BenchmarkBufferedGenericFrontier(b *testing.B) {
	benchGenericWalk(b, streamBenchBody+`,"frontier_only":true}`, false)
}

func BenchmarkStreamEnumerate20k(b *testing.B) { benchGenericWalk(b, walk20kBody, true) }

func BenchmarkBufferedEnumerate20k(b *testing.B) { benchGenericWalk(b, walk20kBody, false) }

// BenchmarkStreamDeltaReQuery: a delta re-query of an unchanged spec —
// the steady state of a dashboard polling a frontier — walks the space
// and ships zero ops.
func BenchmarkStreamDeltaReQuery(b *testing.B) {
	s := newTestServer(b, streamBenchOpts())
	body := streamBenchBody + `,"frontier_only":true,"delta":true}`
	discardRequest(b, s, body, true) // seeds the predecessor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discardRequest(b, s, body, true)
	}
}

// The gzip pooling benchmarks (satellite a): compressing a ~1 MB body
// with a pooled, Reset writer versus a cold gzip.NewWriterLevel per
// response. The delta is the per-response allocation the pool saves.
func gzipBenchBody() []byte {
	var buf bytes.Buffer
	for i := 0; buf.Len() < 1<<20; i++ {
		fmt.Fprintf(&buf, `{"groups":[{"type":"arm-cortex-a9","nodes":%d,"cores":4,"ghz":1.7,"work_fraction":0.4}],"time_seconds":%d.5,"energy_joules":%d.25,"label":"row %d"}`+"\n",
			i%5, i, i*3, i)
	}
	return buf.Bytes()
}

func BenchmarkGzipPooledWriter(b *testing.B) {
	body := gzipBenchBody()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink bytes.Buffer
		zw := gzipGet(&sink)
		zw.Write(body)
		zw.Close()
		gzipPut(zw)
	}
}

func BenchmarkGzipColdWriter(b *testing.B) {
	body := gzipBenchBody()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&sink, gzip.BestSpeed)
		zw.Write(body)
		zw.Close()
	}
}
